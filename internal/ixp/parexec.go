package ixp

import (
	"fmt"
	"math/bits"

	"shangrila/internal/cg"
)

// Shard-phase execution: the ME-local mirror of runME/readyThread.
//
// shardActivate executes one thread activation exactly as runME does —
// same round-robin pick, same tight-loop batching, same cycle accounting
// — but confined to ME-local state. Shared-state effects are deferred
// into the ME's log for the replay phase:
//
//   - A blocking memory access or ring op ends the activation under both
//     engines, so deferring it never changes what the ME computes inside
//     the window: the thread blocks on state the replay supplies later.
//     The shard performs only the address-range pre-check (registers and
//     the target's length are window-stable), deciding block-vs-fault.
//   - Statistics, tracing and event sequence numbers are applied by the
//     replay in merge order, so samples and traces interleave exactly as
//     under the serial engine.
//   - Local Memory is ME-private: loads and stores execute inline, with
//     the access counter staged in the shard's accArray.
//
// Faults stop the shard immediately; the replay stops the run when the
// fault entry's turn comes in merge order, leaving shared state exactly
// where the serial engine would have.

// shardReady mirrors readyThread: unblock the thread and make sure the
// ME has an activation queued. The log entry's only replay effect is
// stamping the created activation's sequence number.
func (p *parallelEngine) shardReady(ms *meShard, meIdx int, ev *meEvent) {
	mx := p.m.MEs[meIdx]
	ti := int(ev.thread)
	th := mx.threads[ti]
	if th.state == tBlocked {
		th.state = tReady
		mx.setReady(ti, true)
	}
	var chain *meEvent
	if !mx.scheduled && mx.enabled {
		mx.scheduled = true
		chain = ms.create(ev.time, evActivate, 0)
	}
	ms.log = append(ms.log, logEntry{ev: ev, me: int32(meIdx), thread: ev.thread,
		isReady: true, activate: chain})
}

// shardActivate mirrors runME for one evActivate event at time ev.time
// (the serial engine's m.now when this event pops). It returns true on a
// machine-check fault, which stops the whole shard.
func (p *parallelEngine) shardActivate(acc *accArray, ms *meShard, meIdx int, ev *meEvent) bool {
	m := p.m
	mx := m.MEs[meIdx]
	if !mx.enabled || mx.dec == nil {
		ms.free = append(ms.free, ev)
		return false
	}
	ti := -1
	n := len(mx.threads)
	if n <= 64 {
		if mx.readyMask == 0 {
			ms.free = append(ms.free, ev)
			return false // re-activated when a thread completes
		}
		rot := mx.readyMask>>uint(mx.rrNext) | mx.readyMask<<uint(n-mx.rrNext)
		ti = mx.rrNext + bits.TrailingZeros64(rot)
		if ti >= n {
			ti -= n
		}
	} else {
		for k := 0; k < n; k++ {
			cand := (mx.rrNext + k) % n
			if mx.threads[cand].state == tReady {
				ti = cand
				break
			}
		}
		if ti < 0 {
			ms.free = append(ms.free, ev)
			return false
		}
	}
	th := mx.threads[ti]
	cycles := int64(0)
	instrs := uint64(0)
	code := mx.dec.code
	// Under EngineCompiled{Shards>0} the staged slots accelerate the
	// straight-line runs; terminators keep the deferring dispatch below,
	// which already confines shared state to the replay.
	var cslots []cSlot
	if mx.cdec != nil {
		cslots = mx.cdec.slots
	}
	regs := &th.regs
	pc := th.pc
	budget := int64(maxRunInstrs)
	reason := YieldBudget
	term := termNone
	var termIn *dInstr
	var termCycles int64
	var faultMsg string
loop:
	for budget > 0 {
		if pc < 0 || pc >= len(code) {
			th.pc = pc
			faultMsg = fmt.Sprintf("ixp: ME%d thread %d: pc %d out of range", meIdx, ti, pc)
			term = termFault
			break loop
		}
		in := &code[pc]
		if in.run > 0 {
			n := int64(in.run)
			if cslots != nil {
				if s := &cslots[pc]; s.run != nil && n <= budget {
					s.run(regs)
					pc = int(s.next)
					instrs += uint64(n)
					cycles += n
					budget -= n
					continue
				}
			}
			if n > budget {
				n = budget
			}
			pc = execRun(code, regs, pc, n)
			instrs += uint64(n)
			cycles += n
			budget -= n
			continue
		}
		instrs++
		cycles++
		budget--
		next := pc + 1
		switch in.kind {
		case dBr:
			next = int(in.target)
		case dBcc:
			if condEval(in.cond, regs[in.srcA], regs[in.srcB]) {
				next = int(in.target)
			}
		case dBccImm:
			if condEval(in.cond, regs[in.srcA], in.imm) {
				next = int(in.target)
			}
		case dFusedImmedBcc:
			regs[in.dst] = in.imm
			if budget > 0 {
				t := &code[next]
				instrs++
				cycles++
				budget--
				next++
				if condEval(t.cond, regs[t.srcA], regs[t.srcB]) {
					next = int(t.target)
				}
			}
		case dFusedImmedBccImm:
			regs[in.dst] = in.imm
			if budget > 0 {
				t := &code[next]
				instrs++
				cycles++
				budget--
				next++
				if condEval(t.cond, regs[t.srcA], t.imm) {
					next = int(t.target)
				}
			}
		case dMem:
			addr := in.addrOff + regs[in.addr]
			nbytes := int(in.nwords) * 4
			if in.level == cg.MemLocal {
				// ME-private: execute inline, as execMem's Local path.
				mem := mx.local
				if int(addr)+nbytes > len(mem) {
					th.pc = pc
					faultMsg = fmt.Sprintf("ixp: ME%d: %v access at %d+%d out of range (level %v)",
						meIdx, in.op, addr, nbytes, in.level)
					term = termFault
					break loop
				}
				if in.store {
					for i, r := range in.data {
						putBEWord(mem[int(addr)+i*4:], regs[r])
					}
				} else {
					for i, r := range in.data {
						regs[r] = beWord(mem[int(addr)+i*4:])
					}
				}
				if in.accIdx >= 0 {
					acc[in.accIdx]++
				}
				cycles += m.Cfg.LocalLatency - 1
			} else {
				// Shared level: pre-check the range, then defer the whole
				// access (bytes, controller, stats, trace) to the replay.
				// The access always blocks the thread past the window end.
				if int(addr)+nbytes > len(m.memory(in.level, meIdx)) {
					th.pc = pc
					faultMsg = fmt.Sprintf("ixp: ME%d: %v access at %d+%d out of range (level %v)",
						meIdx, in.op, addr, nbytes, in.level)
					term = termFault
					break loop
				}
				pc = next
				th.state = tBlocked
				mx.setReady(ti, false)
				reason = YieldMem
				term = termMem
				termIn = in
				termCycles = cycles
				break loop
			}
		case dCAMLookup:
			hit, entry := m.camLookup(mx, regs[in.srcA])
			regs[in.dst] = hit
			regs[in.dst2] = entry
			cycles += 2
		case dCAMWrite:
			e := regs[in.srcA] % uint32(len(mx.cam))
			mx.cam[e] = camEntry{tag: regs[in.srcB], valid: true}
			m.camTouch(mx, int(e))
		case dCAMClear:
			m.stats.CAMClears[mx.idx]++
			for i := range mx.cam {
				mx.cam[i].valid = false
			}
		case dRingGet, dRingPut:
			// Rings are shared: defer entirely; both ops always block.
			pc = next
			th.state = tBlocked
			mx.setReady(ti, false)
			reason = YieldRing
			term = termRing
			termIn = in
			termCycles = cycles
			break loop
		case dCtxArb:
			pc = next
			reason = YieldCtx
			break loop
		case dHalt:
			th.state = tDead
			mx.setReady(ti, false)
			pc = next
			reason = YieldHalt
			break loop
		default: // dBad
			th.pc = pc
			faultMsg = fmt.Sprintf("ixp: ME%d: bad opcode %v", meIdx, in.op)
			term = termFault
			break loop
		}
		pc = next
	}
	if term == termFault {
		// Serial fault paths flush instrs but not cycles, and skip the
		// round-robin update; the replay reproduces that.
		ms.log = append(ms.log, logEntry{ev: ev, me: int32(meIdx), thread: int32(ti),
			cycles: cycles, instrs: instrs, reason: YieldFault, term: termFault,
			faultMsg: faultMsg})
		return true
	}
	th.pc = pc
	if reason == YieldBudget {
		// Mirror the serial engine: budget exhaustion resumes the same
		// thread — context switches happen only at voluntary yields.
		mx.rrNext = ti
	} else {
		mx.rrNext = (ti + 1) % len(mx.threads)
	}
	hasReady := mx.readyMask != 0
	if n > 64 {
		hasReady = false
		for _, t2 := range mx.threads {
			if t2.state == tReady {
				hasReady = true
				break
			}
		}
	}
	var chain *meEvent
	if hasReady {
		mx.scheduled = true
		chain = ms.create(ev.time+cycles+1, evActivate, 0)
	}
	ms.log = append(ms.log, logEntry{ev: ev, me: int32(meIdx), thread: int32(ti),
		cycles: cycles, instrs: instrs, reason: reason, term: term,
		in: termIn, cyclesAt: termCycles, activate: chain})
	return false
}
