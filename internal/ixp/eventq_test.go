package ixp

import (
	"sort"
	"testing"

	"shangrila/internal/cg"
)

// lcg is a tiny deterministic generator so queue tests don't depend on
// math/rand ordering across Go versions.
type lcg uint64

func (r *lcg) next() uint64 {
	*r = *r*6364136223846793005 + 1442695040888963407
	return uint64(*r >> 17)
}

// TestEventQueueOrdering drives the wheel with a mix of near, far (beyond
// the wheel window) and clustered timestamps, interleaving pushes and
// pops, and checks the pop sequence is exactly the (time, seq) sort of
// everything pushed — the ordering contract every determinism property
// rests on.
func TestEventQueueOrdering(t *testing.T) {
	var q eventQueue
	var rng lcg = 42
	var pushed []event
	var popped []event
	seq := int64(0)
	now := int64(0)
	push := func(dt int64) {
		seq++
		e := event{time: now + dt, seq: seq, kind: evCallback, cb: int32(seq)}
		pushed = append(pushed, e)
		q.push(e)
	}
	for round := 0; round < 5000; round++ {
		switch rng.next() % 4 {
		case 0:
			push(int64(rng.next() % 16)) // dense near events
		case 1:
			push(int64(rng.next() % wheelSize)) // anywhere in the window
		case 2:
			push(wheelSize + int64(rng.next()%(3*wheelSize))) // far overflow
		default:
			if q.len() > 0 {
				e := q.pop()
				if e.time < now {
					t.Fatalf("pop went backward: %d after now=%d", e.time, now)
				}
				now = e.time
				popped = append(popped, e)
			}
		}
	}
	for q.len() > 0 {
		popped = append(popped, q.pop())
	}
	if len(popped) != len(pushed) {
		t.Fatalf("popped %d of %d events", len(popped), len(pushed))
	}
	sort.Slice(pushed, func(i, j int) bool { return pushed[i].before(&pushed[j]) })
	for i := range pushed {
		if popped[i] != pushed[i] {
			t.Fatalf("pop %d = %+v, want %+v", i, popped[i], pushed[i])
		}
	}
}

// TestEventQueueSeqBreaksTies checks same-cycle events pop in schedule
// order. Pushes honor the producer contract (the machine's schedule
// counter is monotone, so same-timestamp events arrive in ascending seq)
// while later-seq events at earlier times interleave freely.
func TestEventQueueSeqBreaksTies(t *testing.T) {
	var q eventQueue
	q.push(event{time: 100, seq: 1})
	q.push(event{time: 50, seq: 2})
	q.push(event{time: 100, seq: 3})
	q.push(event{time: 100, seq: 4})
	q.push(event{time: 50, seq: 5})
	want := []event{{time: 50, seq: 2}, {time: 50, seq: 5},
		{time: 100, seq: 1}, {time: 100, seq: 3}, {time: 100, seq: 4}}
	for i, w := range want {
		if got := q.pop(); got.time != w.time || got.seq != w.seq {
			t.Fatalf("pop %d = (%d,%d), want (%d,%d)", i, got.time, got.seq, w.time, w.seq)
		}
	}
}

// TestEventQueuePopUntil checks the deadline path: events at or before
// the deadline pop, the first later one stays queued and pops intact on
// the next call.
func TestEventQueuePopUntil(t *testing.T) {
	var q eventQueue
	q.push(event{time: 10, seq: 1})
	q.push(event{time: 20, seq: 2})
	q.push(event{time: 30, seq: 3})
	if e, ok := q.popUntil(20); !ok || e.time != 10 {
		t.Fatalf("popUntil(20) #1 = %+v, %v", e, ok)
	}
	if e, ok := q.popUntil(20); !ok || e.time != 20 {
		t.Fatalf("popUntil(20) #2 = %+v, %v", e, ok)
	}
	if _, ok := q.popUntil(20); ok {
		t.Fatal("popUntil(20) returned an event past the deadline")
	}
	if q.len() != 1 {
		t.Fatalf("queue len after deadline = %d, want 1", q.len())
	}
	if e, ok := q.popUntil(30); !ok || e.time != 30 {
		t.Fatalf("popUntil(30) = %+v, %v", e, ok)
	}
}

// TestEventQueuePast checks events scheduled before the wheel's base (a
// control-plane At aimed backward) still pop first.
func TestEventQueuePast(t *testing.T) {
	var q eventQueue
	q.push(event{time: 1000, seq: 1})
	if e := q.pop(); e.time != 1000 {
		t.Fatalf("setup pop = %+v", e)
	}
	q.push(event{time: 2000, seq: 2})
	q.push(event{time: 5, seq: 3}) // before base
	if e := q.pop(); e.time != 5 {
		t.Fatalf("past event did not pop first: %+v", e)
	}
	if e := q.pop(); e.time != 2000 {
		t.Fatalf("remaining pop = %+v", e)
	}
}

// TestEventQueueFarMigration drives timestamps far past the window so far
// events migrate into the wheel across several base jumps.
func TestEventQueueFarMigration(t *testing.T) {
	var q eventQueue
	times := []int64{0, 1, wheelSize + 3, 2*wheelSize + 1, 10 * wheelSize, 10*wheelSize + 1}
	for i, ti := range times {
		q.push(event{time: ti, seq: int64(i)})
	}
	var got []int64
	for q.len() > 0 {
		got = append(got, q.pop().time)
	}
	for i := 1; i < len(got); i++ {
		if got[i] < got[i-1] {
			t.Fatalf("out of order: %v", got)
		}
	}
	if len(got) != len(times) {
		t.Fatalf("popped %d of %d", len(got), len(times))
	}
}

// computeProg is a self-contained kernel touching the event core's hot
// paths — ALU runs, a scratch load (block + evReady wakeup), a context
// yield — with no media, rings or packet state, so its steady-state event
// traffic should allocate nothing at all.
func computeProg() *cg.Program {
	return &cg.Program{Name: "compute", Code: []*cg.Instr{
		{Op: cg.IImmed, Dst: 0, Imm: 1},
		{Op: cg.IALUImm, ALU: cg.AAdd, Dst: 1, SrcA: 1, Imm: 3},
		{Op: cg.IALU, ALU: cg.AXor, Dst: 2, SrcA: 1, SrcB: 0},
		{Op: cg.IMem, Level: cg.MemScratch, Addr: cg.NoPReg, AddrOff: 64,
			NWords: 1, Data: []cg.PReg{3}, Class: cg.ClassAppData},
		{Op: cg.ICtxArb},
		{Op: cg.IBr, Target: 1},
	}}
}

// TestRunSteadyStateAllocFree is the regression test for the zero-alloc
// event core: after warm-up, repeated short Run calls — including the
// deadline path that used to pop and re-push the head event every call —
// must not allocate.
func TestRunSteadyStateAllocFree(t *testing.T) {
	cfg := DefaultConfig()
	cfg.SampleInterval = 0
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < cfg.NumMEs; i++ {
		m.LoadProgram(i, computeProg())
	}
	if err := m.Run(50_000); err != nil { // warm-up: grow buckets, registries
		t.Fatal(err)
	}
	avg := testing.AllocsPerRun(200, func() {
		if err := m.Run(500); err != nil {
			t.Fatal(err)
		}
	})
	if avg != 0 {
		t.Errorf("steady-state Run allocates %v objects per call, want 0", avg)
	}
}

// BenchmarkEventCore pins the schedule→pop round-trip cost of the event
// core on a machine executing pure compute (allocs/op is the headline:
// it must be 0).
func BenchmarkEventCore(b *testing.B) {
	cfg := DefaultConfig()
	cfg.SampleInterval = 0
	m, err := New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < cfg.NumMEs; i++ {
		m.LoadProgram(i, computeProg())
	}
	if err := m.Run(50_000); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := m.Run(1000); err != nil {
			b.Fatal(err)
		}
	}
}
