package ixp

import "shangrila/internal/metrics"

// Option configures a Machine at construction. Options apply left to
// right before the configuration is validated, so construction is one
// call:
//
//	m, err := ixp.New(cfg,
//	    ixp.WithMedia(media),
//	    ixp.WithEngine(ixp.EngineParallel{Shards: 4}),
//	    ixp.WithTracer(ixp.NewStallTracer(cfg.NumMEs, cfg.ThreadsPerME)))
type Option func(*Machine)

// WithMedia installs the machine's traffic interface: the implementation
// that supplies arriving packets (Inject) and consumes transmitted ones
// (Transmit). Machines without media only execute code — no Rx tick
// chain is scheduled.
func WithMedia(media Media) Option {
	return func(m *Machine) { m.media = media }
}

// WithEngine selects the simulation engine (EngineSerial, the default,
// EngineParallel, or EngineCompiled — all bit-identical). The spec lands
// in Config.Engine, so Validate rejects invalid shard counts at
// construction with an *EngineConfigError.
func WithEngine(spec EngineSpec) Option {
	return func(m *Machine) { m.Cfg.Engine = spec }
}

// WithTracer installs the event sink from construction on (nil keeps
// tracing off; compose several sinks with MultiTracer). Equivalent to
// Observer().SetTracer before the first Run, folded into the same
// construction call.
func WithTracer(t Tracer) Option {
	return func(m *Machine) { m.tracer = t }
}

// WithMetrics hands the machine the telemetry registry its instruments
// land in, overriding Config.Metrics. Nil keeps the config's registry
// (or a private one).
func WithMetrics(reg *metrics.Registry) Option {
	return func(m *Machine) {
		if reg != nil {
			m.Cfg.Metrics = reg
		}
	}
}
