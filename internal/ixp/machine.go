// Package ixp models the Intel IXP2400 network processor of §3: eight
// multi-threaded microengines with non-preemptive round-robin thread
// arbitration, an uncached four-level memory hierarchy with per-level
// latency and finite controller bandwidth, a 16-entry CAM and 640 words of
// Local Memory per ME, scratch rings for communication channels, and
// Rx/Tx media engines. The machine executes the code generator's CGIR
// directly: registers hold real 32-bit values and the simulated memories
// hold real bytes, so compiled applications genuinely forward packets
// while the event-driven timing model produces the forwarding rates and
// per-packet access counts the paper's evaluation measures.
//
// The paper's experiments run on real hardware; this model is the
// substitution (see DESIGN.md). Constants are calibrated so the Figure 6
// micro-experiment reproduces the paper's budget rules: ~700 instructions
// and at most ≈2 DRAM / 8 SRAM / 64 Scratch accesses per 64-byte packet
// at the 2.5 Gbps line rate with six MEs.
package ixp

import (
	"fmt"
	"math"
	"math/bits"

	"shangrila/internal/cg"
	"shangrila/internal/metrics"
)

// Config sets the machine's physical parameters.
type Config struct {
	NumMEs       int // microengines available to packet processing
	ThreadsPerME int
	ClockMHz     float64
	PortGbps     float64 // aggregate media bandwidth (3x1G on the eval board)

	// Per-level controller timing (cycles): fixed pipeline latency plus
	// service occupancy base + per-word.
	ScratchLatency, ScratchSvcBase, ScratchSvcWord int64
	SRAMLatency, SRAMSvcBase, SRAMSvcWord          int64
	DRAMLatency, DRAMSvcBase, DRAMSvcWord          int64
	LocalLatency                                   int64

	// ChargeDMA models Rx/Tx engines consuming DRAM/SRAM bandwidth for
	// packet payload and metadata movement.
	ChargeDMA bool

	ScratchBytes int
	SRAMBytes    int
	DRAMBytes    int
	LocalBytes   int
	CAMEntries   int

	// SampleInterval, when positive, schedules a telemetry sampler every
	// that many cycles: per-ME utilization, per-controller saturation and
	// queue depth, and per-ring occupancy are appended to the machine's
	// metrics registry as time-series.
	SampleInterval int64
	// SampleWindow bounds each telemetry series to the most recent N
	// samples (0 keeps every sample).
	SampleWindow int

	// NumRings and RingSlots describe the scratch-ring topology: NumRings
	// rings of RingSlots descriptor pairs each. The runtime folds the
	// compiled image's layout into these before constructing the machine.
	NumRings  int
	RingSlots int

	// Metrics, when non-nil, is the registry the machine's telemetry lands
	// in — the harness hands one registry down so compile-time and run-time
	// instruments share a namespace. Nil gives the machine a private
	// registry (reachable via Observer.Metrics).
	Metrics *metrics.Registry

	// Engine selects the simulation engine (see engine.go). Nil means
	// EngineSerial; WithEngine sets it at construction. Validate rejects
	// parallel selections with invalid shard counts or a degenerate
	// (empty) conservative lookahead window.
	Engine EngineSpec
}

// Validate rejects configurations that would make the timing model divide
// by zero or produce NaN/Inf rates (zero or negative clock, port rate,
// structural sizes).
func (c *Config) Validate() error {
	switch {
	case c.NumMEs <= 0:
		return fmt.Errorf("ixp: config: NumMEs must be positive (got %d)", c.NumMEs)
	case c.ThreadsPerME <= 0:
		return fmt.Errorf("ixp: config: ThreadsPerME must be positive (got %d)", c.ThreadsPerME)
	case math.IsNaN(c.ClockMHz) || math.IsInf(c.ClockMHz, 0) || c.ClockMHz <= 0:
		return fmt.Errorf("ixp: config: ClockMHz must be a positive finite value (got %v); a zero or negative clock makes every rate NaN/Inf", c.ClockMHz)
	case math.IsNaN(c.PortGbps) || math.IsInf(c.PortGbps, 0) || c.PortGbps <= 0:
		return fmt.Errorf("ixp: config: PortGbps must be a positive finite value (got %v); the Rx injection interval is derived from it", c.PortGbps)
	case c.ScratchLatency < 0 || c.SRAMLatency < 0 || c.DRAMLatency < 0 || c.LocalLatency < 0:
		return fmt.Errorf("ixp: config: memory latencies must be non-negative")
	case c.ScratchSvcBase < 0 || c.ScratchSvcWord < 0 ||
		c.SRAMSvcBase < 0 || c.SRAMSvcWord < 0 ||
		c.DRAMSvcBase < 0 || c.DRAMSvcWord < 0:
		return fmt.Errorf("ixp: config: controller service times must be non-negative")
	case c.ScratchBytes <= 0 || c.SRAMBytes <= 0 || c.DRAMBytes <= 0 || c.LocalBytes <= 0:
		return fmt.Errorf("ixp: config: memory sizes must be positive")
	case c.CAMEntries <= 0:
		return fmt.Errorf("ixp: config: CAMEntries must be positive (got %d)", c.CAMEntries)
	case c.SampleInterval < 0:
		return fmt.Errorf("ixp: config: SampleInterval must be non-negative (got %d)", c.SampleInterval)
	case c.SampleWindow < 0:
		return fmt.Errorf("ixp: config: SampleWindow must be non-negative (got %d)", c.SampleWindow)
	case c.NumRings < 0:
		return fmt.Errorf("ixp: config: NumRings must be non-negative (got %d)", c.NumRings)
	case c.NumRings > 0 && c.RingSlots <= 0:
		return fmt.Errorf("ixp: config: RingSlots must be positive when rings are configured (got %d)", c.RingSlots)
	}
	return c.validateEngine()
}

// DefaultConfig returns the calibrated IXP2400 model.
func DefaultConfig() Config {
	return Config{
		NumMEs:       8,
		ThreadsPerME: 8,
		ClockMHz:     600,
		PortGbps:     3.0,

		ScratchLatency: 60, ScratchSvcBase: 1, ScratchSvcWord: 1,
		SRAMLatency: 90, SRAMSvcBase: 8, SRAMSvcWord: 1,
		DRAMLatency: 120, DRAMSvcBase: 20, DRAMSvcWord: 1,
		LocalLatency: 3,

		ChargeDMA: true,

		ScratchBytes: 16 << 10,
		SRAMBytes:    8 << 20,
		DRAMBytes:    8 << 20, // pool sized for the packet buffers in use
		LocalBytes:   2560,
		CAMEntries:   16,

		NumRings:  3, // Rx, Tx, free list; runtimes add app rings
		RingSlots: 128,
	}
}

// AccessKey aggregates the Table 1 statistics.
type AccessKey struct {
	Level cg.MemLevel
	Class cg.AccessClass
}

// Stats accumulates run statistics.
type Stats struct {
	Cycles        int64
	RxPackets     uint64
	RxBits        uint64 // wire bits of packets accepted at Rx
	TxPackets     uint64
	TxBits        uint64
	FreedPackets  uint64
	RxDropped     uint64 // saturation drops at the Rx ring (expected)
	RxDroppedBits uint64 // wire bits of those drops (count toward offered load)
	// RingOverflow counts ME ring-put attempts rejected by a full ring,
	// indexed by ring number: backpressure between pipeline stages (the
	// "channel ring overflow" drop cause, distinct from Rx saturation).
	RingOverflow []uint64
	// MEAccesses counts microengine-issued memory references by level
	// and class (engine DMA is excluded, as in Table 1).
	MEAccesses map[AccessKey]uint64
	// MEInstrs counts executed CGIR instructions per ME.
	MEInstrs []uint64
	// MEBusy accumulates executing (non-idle) cycles per ME; divided by
	// Cycles it is the ME's utilization over the measured window.
	MEBusy []int64
	// CAMLookups, CAMHits and CAMClears observe the software-controlled
	// cache per ME: 16-entry CAM probes, their hits, and full-CAM
	// invalidations — the delayed-update flush path, so a churn run can
	// verify that control-plane updates actually reach each ME.
	CAMLookups []uint64
	CAMHits    []uint64
	CAMClears  []uint64
	// Busy accumulates controller occupancy cycles per level.
	Busy [4]int64
}

// clone deep-copies the statistics (maps and slices included).
func (s *Stats) clone() Stats {
	cp := *s
	cp.MEAccesses = make(map[AccessKey]uint64, len(s.MEAccesses))
	for k, v := range s.MEAccesses {
		cp.MEAccesses[k] = v
	}
	cp.MEInstrs = append([]uint64(nil), s.MEInstrs...)
	cp.MEBusy = append([]int64(nil), s.MEBusy...)
	cp.RingOverflow = append([]uint64(nil), s.RingOverflow...)
	cp.CAMLookups = append([]uint64(nil), s.CAMLookups...)
	cp.CAMHits = append([]uint64(nil), s.CAMHits...)
	cp.CAMClears = append([]uint64(nil), s.CAMClears...)
	return cp
}

// Utilization returns ME i's busy fraction over the measured window.
func (s Stats) Utilization(i int) float64 {
	if s.Cycles == 0 || i >= len(s.MEBusy) {
		return 0
	}
	return float64(s.MEBusy[i]) / float64(s.Cycles)
}

// Saturation returns the named controller level's occupancy fraction over
// the measured window (1.0 = the controller was busy every cycle).
func (s Stats) Saturation(level cg.MemLevel) float64 {
	if s.Cycles == 0 || int(level) >= len(s.Busy) {
		return 0
	}
	return float64(s.Busy[level]) / float64(s.Cycles)
}

// Gbps returns the measured forwarding rate over the simulated interval.
// A non-positive clock yields 0 rather than NaN/Inf (ixp.New rejects such
// configurations; this guards direct Stats use).
func (s Stats) Gbps(clockMHz float64) float64 {
	if s.Cycles == 0 || clockMHz <= 0 || math.IsNaN(clockMHz) || math.IsInf(clockMHz, 0) {
		return 0
	}
	seconds := float64(s.Cycles) / (clockMHz * 1e6)
	return float64(s.TxBits) / 1e9 / seconds
}

// PerPacket returns ME accesses per forwarded-or-dropped packet for a
// level/class pair.
func (s Stats) PerPacket(level cg.MemLevel, class cg.AccessClass) float64 {
	done := s.TxPackets + s.FreedPackets
	if done == 0 {
		return 0
	}
	return float64(s.MEAccesses[AccessKey{level, class}]) / float64(done)
}

// OfferedGbps returns the load the media offered over the measured window:
// accepted plus saturation-dropped wire bits per simulated second.
func (s Stats) OfferedGbps(clockMHz float64) float64 {
	if s.Cycles == 0 || clockMHz <= 0 || math.IsNaN(clockMHz) || math.IsInf(clockMHz, 0) {
		return 0
	}
	seconds := float64(s.Cycles) / (clockMHz * 1e6)
	return float64(s.RxBits+s.RxDroppedBits) / 1e9 / seconds
}

// DropRate returns the fraction of offered packets lost to Rx-ring
// saturation (0 when nothing was offered).
func (s Stats) DropRate() float64 {
	offered := s.RxPackets + s.RxDropped
	if offered == 0 {
		return 0
	}
	return float64(s.RxDropped) / float64(offered)
}

// ChanOverflows returns the total ME ring-put rejections across every
// ring: the channel-backpressure counterpart of RxDropped.
func (s Stats) ChanOverflows() uint64 {
	var n uint64
	for _, v := range s.RingOverflow {
		n += v
	}
	return n
}

// Ring is a scratch-memory descriptor ring carrying (word0, word1) pairs.
type Ring struct {
	buf  [][2]uint32
	cap  int
	head int
	n    int
	hwm  int // high-water occupancy since the last stats reset
}

func newRing(capacity int) *Ring { return &Ring{buf: make([][2]uint32, capacity), cap: capacity} }

// Put appends a pair; reports false when full.
func (r *Ring) Put(a, b uint32) bool {
	if r.n == r.cap {
		return false
	}
	r.buf[(r.head+r.n)%r.cap] = [2]uint32{a, b}
	r.n++
	if r.n > r.hwm {
		r.hwm = r.n
	}
	return true
}

// Get pops a pair; ok=false when empty.
func (r *Ring) Get() (a, b uint32, ok bool) {
	if r.n == 0 {
		return 0, 0, false
	}
	p := r.buf[r.head]
	r.head = (r.head + 1) % r.cap
	r.n--
	return p[0], p[1], true
}

// Len returns the entry count.
func (r *Ring) Len() int { return r.n }

// Space returns free slots.
func (r *Ring) Space() int { return r.cap - r.n }

// Cap returns the slot count.
func (r *Ring) Cap() int { return r.cap }

// MaxOcc returns the high-water occupancy since the last stats reset.
func (r *Ring) MaxOcc() int { return r.hwm }

// resetHWM restarts the high-water mark at the current occupancy (a ring
// may carry standing entries across a stats reset).
func (r *Ring) resetHWM() { r.hwm = r.n }

// controller models one shared memory channel.
type controller struct {
	level    cg.MemLevel
	latency  int64
	svcBase  int64
	svcWord  int64
	nextFree int64
}

// access queues a request issued at t and returns when its service began
// (start-t is the queueing delay behind earlier requests — the bandwidth
// signal stall attribution keys on) and when it completes, updating
// occupancy.
func (c *controller) access(t int64, words int, st *Stats) (start, done int64) {
	start = t
	if c.nextFree > start {
		start = c.nextFree
	}
	svc := c.svcBase + c.svcWord*int64(words)
	c.nextFree = start + svc
	st.Busy[c.level] += svc
	return start, start + svc + c.latency
}

type threadState int

const (
	tReady threadState = iota
	tBlocked
	tDead
)

// Thread is one hardware thread context. The register file carries one
// extra slot past the architectural registers: the predecoder's wired
// zero (zeroReg), which absent operands read and nothing writes.
type Thread struct {
	regs  [cg.NumRegs + 1]uint32
	pc    int
	state threadState
}

// Reg returns a thread register (test hook).
func (t *Thread) Reg(r cg.PReg) uint32 { return t.regs[r] }

// SetReg sets a thread register (used by the runtime loader).
func (t *Thread) SetReg(r cg.PReg, v uint32) { t.regs[r] = v }

type camEntry struct {
	tag   uint32
	valid bool
}

// ME is one microengine.
type ME struct {
	idx     int
	prog    *cg.Program
	dec     *dProg // predecoded block form of prog (see predecode.go)
	cdec    *cProg // staged closure form, set only under a compiled engine
	threads []*Thread
	local   []byte
	cam     []camEntry
	camLRU  []int // entry indices, most recent first
	rrNext  int
	// readyMask mirrors thread states (bit t set ⇔ threads[t] is tReady)
	// for the first 64 threads, so the scheduler picks round-robin with
	// two bit operations instead of scanning the thread array twice per
	// activation. Machines with more than 64 threads per ME fall back to
	// the scan.
	readyMask uint64
	scheduled bool
	enabled   bool
}

// setReady maintains readyMask alongside a thread state change.
func (m *ME) setReady(t int, ready bool) {
	if t < 64 {
		if ready {
			m.readyMask |= 1 << uint(t)
		} else {
			m.readyMask &^= 1 << uint(t)
		}
	}
}

// Thread returns thread t (runtime loader hook).
func (m *ME) Thread(t int) *Thread { return m.threads[t] }

// Media is the machine's traffic interface: one implementation supplies
// arriving packets and consumes transmitted ones. The runtime's trace
// player and the workload engine's arrival processes are both Media.
type Media interface {
	// Inject is called at each Rx opportunity. It may enqueue at most one
	// packet (stamping it with Observer.RxPacket, or counting a loss with
	// Observer.RxDrop when the Rx path is saturated) and returns the delay
	// in core cycles until the next opportunity. Fractional delays are
	// honored exactly: the machine carries the sub-cycle remainder across
	// ticks, so the long-run injection rate matches the requested one.
	Inject(m *Machine) float64
	// Transmit is called for each descriptor popped from the Tx ring; it
	// must return the frame length in bytes (for rate accounting) and is
	// responsible for recycling the buffer.
	Transmit(m *Machine, w0, w1 uint32) int
}

// Machine is the whole simulated processor plus media engines.
type Machine struct {
	Cfg     Config
	Scratch []byte
	SRAM    []byte
	DRAM    []byte
	MEs     []*ME
	Rings   []*Ring

	stats     Stats
	reg       *metrics.Registry
	lat       *metrics.Histogram // Rx→Tx latency of transmitted packets
	tracer    Tracer             // nil = tracing off (every emit is one nil check)
	meLabels  []string           // per-ME program labels (Observer.SetMELabel)
	rxStamp   map[uint32]int64   // buffer id → arrival cycle
	rxCarry   float64            // fractional-cycle Rx pacing remainder
	media     Media
	lastBusy  [4]int64       // controller busy at the previous telemetry sample
	lastME    []int64        // per-ME busy at the previous telemetry sample
	ctrl      [3]*controller // scratch, sram, dram (local is uncontended)
	eng       engine         // event core (serial or parallel; see engine.go)
	now       int64
	seq       int64
	statsBase int64 // time origin of the current Stats window
	started   bool  // engine tick chains scheduled
	err       error

	// acc is the hot-path form of Stats.MEAccesses: a flat counter array
	// indexed by the predecoder's accIdx (level*numAccessClasses+class).
	// Snapshot folds it into the map; the map itself is never touched
	// while executing instructions.
	acc [numMemLevels * numAccessClasses]uint64

	// decCache memoizes predecoded programs so reloading the same
	// cg.Program on several MEs (replicated pipeline stages) decodes once.
	decCache map[*cg.Program]*dProg

	// compCache memoizes staged programs (compile.go) the same way;
	// populated only under a compiled engine. cctx is the dispatcher's
	// exit-closure context, held by value so the steady state stays
	// allocation-free.
	compCache map[*dProg]*cProg
	cctx      cCtx

	// cbs is the callback registry: events are pointer-free, so a
	// scheduled closure parks here and the event carries its index. The
	// free list recycles slots (rings of control-plane callbacks never
	// grow the table).
	cbs    []func()
	cbFree []int32

	// XScaleStep processes one descriptor from an XScale-bound ring; it
	// returns the modelled processing cost in cycles. Installed by the
	// runtime when the plan has XScale aggregates.
	XScaleStep  func(m *Machine, ring int, w0, w1 uint32) int64
	XScaleRings []int
}

// New builds a machine from a configuration (ring topology included),
// shaped by functional options: WithMedia supplies the traffic source
// and sink (machines without media only execute code), WithEngine
// selects the serial or parallel event core, WithTracer attaches the
// event sink, WithMetrics overrides the telemetry registry. Options
// apply before validation, so an invalid engine selection (bad shard
// count) fails here with an *EngineConfigError, and zero or negative
// clock, port rate or structural sizes are rejected with a descriptive
// error instead of surfacing later as NaN/Inf rates.
func New(cfg Config, opts ...Option) (*Machine, error) {
	m := &Machine{Cfg: cfg}
	for _, o := range opts {
		if o != nil {
			o(m)
		}
	}
	if err := m.Cfg.Validate(); err != nil {
		return nil, err
	}
	cfg = m.Cfg
	reg := cfg.Metrics
	if reg == nil {
		reg = metrics.NewRegistry()
	}
	m.Scratch = make([]byte, cfg.ScratchBytes)
	m.SRAM = make([]byte, cfg.SRAMBytes)
	m.DRAM = make([]byte, cfg.DRAMBytes)
	m.reg = reg
	m.lat = metrics.NewHistogram()
	m.rxStamp = map[uint32]int64{}
	m.lastME = make([]int64, cfg.NumMEs)
	m.stats.MEAccesses = map[AccessKey]uint64{}
	m.stats.MEInstrs = make([]uint64, cfg.NumMEs)
	m.stats.MEBusy = make([]int64, cfg.NumMEs)
	m.stats.RingOverflow = make([]uint64, cfg.NumRings)
	m.stats.CAMLookups = make([]uint64, cfg.NumMEs)
	m.stats.CAMHits = make([]uint64, cfg.NumMEs)
	m.stats.CAMClears = make([]uint64, cfg.NumMEs)
	m.ctrl[0] = &controller{level: cg.MemScratch, latency: cfg.ScratchLatency, svcBase: cfg.ScratchSvcBase, svcWord: cfg.ScratchSvcWord}
	m.ctrl[1] = &controller{level: cg.MemSRAM, latency: cfg.SRAMLatency, svcBase: cfg.SRAMSvcBase, svcWord: cfg.SRAMSvcWord}
	m.ctrl[2] = &controller{level: cg.MemDRAM, latency: cfg.DRAMLatency, svcBase: cfg.DRAMSvcBase, svcWord: cfg.DRAMSvcWord}
	for i := 0; i < cfg.NumMEs; i++ {
		me := &ME{idx: i, local: make([]byte, cfg.LocalBytes),
			cam: make([]camEntry, cfg.CAMEntries)}
		for e := 0; e < cfg.CAMEntries; e++ {
			me.camLRU = append(me.camLRU, e)
		}
		for t := 0; t < cfg.ThreadsPerME; t++ {
			me.threads = append(me.threads, &Thread{state: tDead})
		}
		m.MEs = append(m.MEs, me)
	}
	for i := 0; i < cfg.NumRings; i++ {
		m.Rings = append(m.Rings, newRing(cfg.RingSlots))
	}
	m.eng = buildEngine(m)
	return m, nil
}

// GrowRing resizes ring i (the free ring must hold every buffer). Entries
// already queued are preserved in FIFO order, so a ring can be grown
// mid-run; shrinking below the current occupancy drops the excess tail.
func (m *Machine) GrowRing(i, slots int) {
	old := m.Rings[i]
	nr := newRing(slots)
	for {
		a, b, ok := old.Get()
		if !ok || !nr.Put(a, b) {
			break
		}
	}
	m.Rings[i] = nr
}

// Metrics returns the machine's telemetry registry. Time-series are only
// populated when Cfg.SampleInterval is positive; the registry itself is
// always available for callers that want to attach their own instruments.
func (m *Machine) Metrics() *metrics.Registry { return m.reg }

// LoadProgram installs code on an ME and starts its threads. The program
// is predecoded into block-structured form here, once; execution never
// consults the cg.Program again.
func (m *Machine) LoadProgram(me int, prog *cg.Program) {
	mx := m.MEs[me]
	mx.prog = prog
	d, ok := m.decCache[prog]
	if !ok {
		d = predecode(prog)
		if m.decCache == nil {
			m.decCache = map[*cg.Program]*dProg{}
		}
		m.decCache[prog] = d
	}
	mx.dec = d
	if m.compiledDispatch() {
		cp, ok := m.compCache[d]
		if !ok {
			cp = compileProg(d, prog)
			if m.compCache == nil {
				m.compCache = map[*dProg]*cProg{}
			}
			m.compCache[d] = cp
		}
		mx.cdec = cp
	}
	mx.enabled = true
	for i, t := range mx.threads {
		t.pc = 0
		t.state = tReady
		mx.setReady(i, true)
	}
}

func (m *Machine) controllerFor(level cg.MemLevel) *controller {
	switch level {
	case cg.MemScratch:
		return m.ctrl[0]
	case cg.MemSRAM:
		return m.ctrl[1]
	default:
		return m.ctrl[2]
	}
}

func (m *Machine) memory(level cg.MemLevel, me int) []byte {
	switch level {
	case cg.MemScratch:
		return m.Scratch
	case cg.MemSRAM:
		return m.SRAM
	case cg.MemDRAM:
		return m.DRAM
	default:
		return m.MEs[me].local
	}
}

func (m *Machine) schedule(t int64, kind evKind, me, thread int, fn func()) {
	cb := int32(-1)
	if fn != nil {
		if n := len(m.cbFree); n > 0 {
			cb = m.cbFree[n-1]
			m.cbFree = m.cbFree[:n-1]
			m.cbs[cb] = fn
		} else {
			cb = int32(len(m.cbs))
			m.cbs = append(m.cbs, fn)
		}
	}
	m.seq++
	m.eng.push(event{time: t, seq: m.seq, kind: kind, me: int32(me), thread: int32(thread), cb: cb})
}

// takeCB claims a scheduled callback out of the registry, freeing its slot.
func (m *Machine) takeCB(i int32) func() {
	fn := m.cbs[i]
	m.cbs[i] = nil
	m.cbFree = append(m.cbFree, i)
	return fn
}

// At schedules fn at absolute cycle t (control-plane injections).
func (m *Machine) At(t int64, fn func()) { m.schedule(t, evCallback, 0, 0, fn) }

// Now returns the current simulation time in cycles.
func (m *Machine) Now() int64 { return m.now }

// Err returns the first machine-check error (bad address, bad opcode).
func (m *Machine) Err() error { return m.err }

func (m *Machine) fail(format string, args ...any) {
	if m.err == nil {
		m.err = fmt.Errorf("ixp: "+format, args...)
	}
}

// activateSoon ensures the ME has an activation event queued.
func (m *Machine) activateSoon(me int, t int64) {
	mx := m.MEs[me]
	if mx.scheduled || !mx.enabled {
		return
	}
	mx.scheduled = true
	m.schedule(t, evActivate, me, 0, nil)
}

// Run advances the simulation until the cycle budget elapses or an error
// occurs. It can be called repeatedly for warm-up + measure phases. The
// event core is the engine the configuration selected (serial by
// default); both engines produce bit-identical observable state.
func (m *Machine) Run(cycles int64) error {
	return m.eng.run(m, cycles)
}

// kickoff schedules the run's initial events: one activation per idle
// ME, and — on the first Run only — the perpetual media/XScale/telemetry
// tick chains (another chain would double the modelled media bandwidth).
// Both engines call it on entry, so the initial event sequence numbers
// are identical.
func (m *Machine) kickoff() {
	for i := range m.MEs {
		m.activateSoon(i, m.now)
	}
	if !m.started {
		m.started = true
		if m.media != nil {
			m.schedule(m.now, evRxTick, 0, 0, nil)
		}
		if len(m.Rings) > cg.RingTx {
			m.schedule(m.now, evTxTick, 0, 0, nil)
		}
		if m.XScaleStep != nil && len(m.XScaleRings) > 0 {
			m.schedule(m.now, evXScale, 0, 0, nil)
		}
		if m.Cfg.SampleInterval > 0 {
			m.schedule(m.now+m.Cfg.SampleInterval, evSample, 0, 0, nil)
		}
	}
}

// readyThread unblocks a thread whose memory or ring operation completed
// and makes sure its ME has an activation queued.
func (m *Machine) readyThread(me, thread int) {
	mx := m.MEs[me]
	th := mx.threads[thread]
	if th.state == tBlocked {
		th.state = tReady
		mx.setReady(thread, true)
	}
	m.activateSoon(me, m.now)
}

// maxRunInstrs bounds one thread activation so event processing stays
// responsive even through long ALU stretches.
const maxRunInstrs = 4096

// runME executes the next ready thread until it blocks or yields.
//
// This is the block engine: straight-line stretches of register
// instructions execute in the tight loop below with no per-instruction
// bookkeeping — instruction and cycle counts are known from the
// predecoded run length and batched into the activation's accumulators,
// which flush to Stats exactly once per activation. Only run terminators
// (branches, memory, rings, CAM, yields) reach the general dispatch.
func (m *Machine) runME(meIdx int) {
	mx := m.MEs[meIdx]
	if !mx.enabled || mx.dec == nil {
		return
	}
	// Round-robin pick: rotate the ready mask so rrNext becomes bit 0 and
	// take the lowest set bit.
	ti := -1
	n := len(mx.threads)
	if n <= 64 {
		if mx.readyMask == 0 {
			return // re-activated when a thread completes
		}
		rot := mx.readyMask>>uint(mx.rrNext) | mx.readyMask<<uint(n-mx.rrNext)
		ti = mx.rrNext + bits.TrailingZeros64(rot)
		if ti >= n {
			ti -= n
		}
	} else {
		for k := 0; k < n; k++ {
			cand := (mx.rrNext + k) % n
			if mx.threads[cand].state == tReady {
				ti = cand
				break
			}
		}
		if ti < 0 {
			return // re-activated when a thread completes
		}
	}
	th := mx.threads[ti]
	windowStart := m.now
	cycles := int64(0)
	instrs := uint64(0) // flushed to stats.MEInstrs once, at every exit
	code := mx.dec.code
	regs := &th.regs
	pc := th.pc
	budget := int64(maxRunInstrs)
	reason := YieldBudget // loop falls through only on budget exhaustion
loop:
	for budget > 0 {
		if pc < 0 || pc >= len(code) {
			th.pc = pc
			m.stats.MEInstrs[meIdx] += instrs
			m.fail("ME%d thread %d: pc %d out of range", meIdx, ti, pc)
			if m.tracer != nil {
				m.tracer.ThreadRun(windowStart, meIdx, ti, cycles, YieldFault)
			}
			return
		}
		in := &code[pc]
		if in.run > 0 {
			// Straight-line run: execute up to the remaining budget in the
			// shared tight loop. Every instruction there costs exactly one
			// cycle, so the whole stretch accounts in one batched step.
			n := int64(in.run)
			if n > budget {
				n = budget
			}
			pc = execRun(code, regs, pc, n)
			instrs += uint64(n)
			cycles += n
			budget -= n
			continue
		}
		// General dispatch: run terminators.
		instrs++
		cycles++
		budget--
		next := pc + 1
		switch in.kind {
		case dBr:
			next = int(in.target)
		case dBcc:
			if condEval(in.cond, regs[in.srcA], regs[in.srcB]) {
				next = int(in.target)
			}
		case dBccImm:
			if condEval(in.cond, regs[in.srcA], in.imm) {
				next = int(in.target)
			}
		case dFusedImmedBcc:
			regs[in.dst] = in.imm
			if budget > 0 { // tail branch fits the budget
				t := &code[next]
				instrs++
				cycles++
				budget--
				next++
				if condEval(t.cond, regs[t.srcA], regs[t.srcB]) {
					next = int(t.target)
				}
			}
		case dFusedImmedBccImm:
			regs[in.dst] = in.imm
			if budget > 0 {
				t := &code[next]
				instrs++
				cycles++
				budget--
				next++
				if condEval(t.cond, regs[t.srcA], t.imm) {
					next = int(t.target)
				}
			}
		case dMem:
			done, block := m.execMem(mx, th, ti, in, cycles)
			if !done {
				th.pc = pc
				m.stats.MEInstrs[meIdx] += instrs
				if m.tracer != nil {
					m.tracer.ThreadRun(windowStart, meIdx, ti, cycles, YieldFault)
				}
				return // machine error
			}
			if in.level == cg.MemLocal {
				cycles += m.Cfg.LocalLatency - 1
			}
			if block > 0 {
				pc = next
				th.state = tBlocked
				mx.setReady(ti, false)
				m.schedule(block, evReady, meIdx, ti, nil)
				reason = YieldMem
				break loop
			}
		case dCAMLookup:
			hit, entry := m.camLookup(mx, regs[in.srcA])
			regs[in.dst] = hit
			regs[in.dst2] = entry
			cycles += 2
		case dCAMWrite:
			e := regs[in.srcA] % uint32(len(mx.cam))
			mx.cam[e] = camEntry{tag: regs[in.srcB], valid: true}
			m.camTouch(mx, int(e))
		case dCAMClear:
			m.stats.CAMClears[mx.idx]++
			for i := range mx.cam {
				mx.cam[i].valid = false
			}
		case dRingGet:
			blockAt := m.ringGet(mx, th, ti, in, cycles)
			if blockAt > 0 {
				pc = next
				th.state = tBlocked
				mx.setReady(ti, false)
				m.schedule(blockAt, evReady, meIdx, ti, nil)
				reason = YieldRing
				break loop
			}
		case dRingPut:
			blockAt := m.ringPut(mx, th, ti, in, cycles)
			if blockAt > 0 {
				pc = next
				th.state = tBlocked
				mx.setReady(ti, false)
				m.schedule(blockAt, evReady, meIdx, ti, nil)
				reason = YieldRing
				break loop
			}
		case dCtxArb:
			pc = next
			reason = YieldCtx
			break loop // stays ready; just gives up the pipeline
		case dHalt:
			th.state = tDead
			mx.setReady(ti, false)
			pc = next
			reason = YieldHalt
			break loop
		default: // dBad
			th.pc = pc
			m.stats.MEInstrs[meIdx] += instrs
			m.fail("ME%d: bad opcode %v", meIdx, in.op)
			if m.tracer != nil {
				m.tracer.ThreadRun(windowStart, meIdx, ti, cycles, YieldFault)
			}
			return
		}
		pc = next
	}
	th.pc = pc
	if m.tracer != nil {
		m.tracer.ThreadRun(windowStart, meIdx, ti, cycles, reason)
	}
	m.stats.MEInstrs[meIdx] += instrs
	m.stats.MEBusy[meIdx] += cycles
	if reason == YieldBudget {
		// Budget exhaustion only chunks the event loop; MEs context-switch
		// at voluntary yield points (I/O, ctx_arb), never mid-sequence, so
		// the same thread continues on the next activation. Rotating here
		// would let a sibling observe a software-cache fill between its
		// CAM tag write and its line write.
		mx.rrNext = ti
	} else {
		mx.rrNext = (ti + 1) % len(mx.threads)
	}
	// Context switch overhead of 1 cycle, then run the next ready thread.
	hasReady := mx.readyMask != 0
	if n > 64 {
		hasReady = false
		for _, t2 := range mx.threads {
			if t2.state == tReady {
				hasReady = true
				break
			}
		}
	}
	if hasReady {
		mx.scheduled = true
		m.schedule(m.now+cycles+1, evActivate, meIdx, 0, nil)
	}
}

// execMem performs the data movement and returns the absolute unblock
// time (0 for non-blocking Local Memory).
func (m *Machine) execMem(mx *ME, th *Thread, ti int, in *dInstr, cyclesSoFar int64) (ok bool, unblockAt int64) {
	addr := in.addrOff + th.regs[in.addr] // absent base predecodes to the wired zero
	mem := m.memory(in.level, mx.idx)
	n := int(in.nwords) * 4
	if int(addr)+n > len(mem) {
		m.fail("ME%d: %v access at %d+%d out of range (level %v)", mx.idx, in.op, addr, n, in.level)
		return false, 0
	}
	if in.atomic && in.level == cg.MemScratch && !in.store {
		// Test-and-set: return previous value, write 1.
		old := beWord(mem[addr:])
		putBEWord(mem[addr:], 1)
		th.regs[in.data[0]] = old
	} else if in.store {
		for i, r := range in.data {
			putBEWord(mem[int(addr)+i*4:], th.regs[r])
		}
	} else {
		for i, r := range in.data {
			th.regs[r] = beWord(mem[int(addr)+i*4:])
		}
	}
	if in.accIdx >= 0 {
		m.acc[in.accIdx]++
	}
	if in.level == cg.MemLocal {
		return true, 0 // 3-cycle pipeline, no context swap (charged by caller)
	}
	c := m.controllerFor(in.level)
	issue := m.now + cyclesSoFar
	start, done := c.access(issue, int(in.nwords), &m.stats)
	if m.tracer != nil {
		m.tracer.MemAccess(issue, mx.idx, ti, in.level, int(in.nwords), start, done)
	}
	return true, done
}

// ringGet pops a descriptor pair, writing InvalidPktID on empty.
func (m *Machine) ringGet(mx *ME, th *Thread, ti int, in *dInstr, cyclesSoFar int64) int64 {
	r := m.Rings[in.ring]
	a, b, ok := r.Get()
	if !ok {
		a, b = cg.InvalidPktID, 0
	}
	th.regs[in.dst] = a
	th.regs[in.dst2] = b
	if in.accIdx >= 0 {
		m.acc[in.accIdx]++
	}
	c := m.ctrl[0]
	issue := m.now + cyclesSoFar
	start, done := c.access(issue, 2, &m.stats)
	if m.tracer != nil {
		m.tracer.RingOp(issue, mx.idx, ti, int(in.ring), RingPop, ok, r.Len(), start, done)
	}
	return done
}

// ringPut pushes a pair; Dst receives 1 on success, 0 when full.
func (m *Machine) ringPut(mx *ME, th *Thread, ti int, in *dInstr, cyclesSoFar int64) int64 {
	r := m.Rings[in.ring]
	ok := r.Put(th.regs[in.srcA], th.regs[in.srcB])
	if !ok {
		// Channel-ring backpressure: compiled code spins and retries, so
		// the packet is not lost here, but the failed put is the stall
		// cause we attribute latency growth to.
		m.stats.RingOverflow[in.ring]++
	}
	if ok && in.ring == cg.RingFree {
		m.stats.FreedPackets++ // an ME dropped (or recycled) a packet
		delete(m.rxStamp, th.regs[in.srcA])
	}
	if in.dst >= 0 { // success flag is optional
		if ok {
			th.regs[in.dst] = 1
		} else {
			th.regs[in.dst] = 0
		}
	}
	if in.accIdx >= 0 {
		m.acc[in.accIdx]++
	}
	c := m.ctrl[0]
	issue := m.now + cyclesSoFar
	start, done := c.access(issue, 2, &m.stats)
	if m.tracer != nil {
		m.tracer.RingOp(issue, mx.idx, ti, int(in.ring), RingPush, ok, r.Len(), start, done)
	}
	return done
}

func (m *Machine) camLookup(mx *ME, key uint32) (hit, entry uint32) {
	m.stats.CAMLookups[mx.idx]++
	for e, ce := range mx.cam {
		if ce.valid && ce.tag == key {
			m.camTouch(mx, e)
			m.stats.CAMHits[mx.idx]++
			return 1, uint32(e)
		}
	}
	// Miss: report the LRU entry for replacement.
	lru := mx.camLRU[len(mx.camLRU)-1]
	return 0, uint32(lru)
}

func (m *Machine) camTouch(mx *ME, e int) {
	for i, v := range mx.camLRU {
		if v == e {
			copy(mx.camLRU[1:i+1], mx.camLRU[:i])
			mx.camLRU[0] = e
			return
		}
	}
}

// ---------------------------------------------------------------------------
// Media engines

func (m *Machine) rxTick() {
	gap := m.media.Inject(m)
	if gap < 0 || math.IsNaN(gap) || math.IsInf(gap, 0) {
		gap = 0
	}
	// Carry the fractional cycle to the next tick: truncating every gap
	// independently would bias the injection rate high (e.g. a 102.4-cycle
	// spacing truncated to 102 overshoots 3 Gbps by 0.4%). Accumulating the
	// remainder keeps the long-run offered load within rounding of the
	// requested rate.
	m.rxCarry += gap
	step := int64(m.rxCarry)
	if step < 1 {
		step = 1
		m.rxCarry = 0
	} else {
		m.rxCarry -= float64(step)
	}
	m.schedule(m.now+step, evRxTick, 0, 0, nil)
}

// RxIntervalCycles returns the exact (fractional) core-cycle spacing of
// frames of the given bit length at the configured port rate. Degenerate
// configurations (non-positive or non-finite clock or port rate —
// rejected by New, but this method is callable on a bare Config) fall
// back to a 64-cycle interval instead of returning zero or negative
// intervals that would wedge the event loop.
func (c *Config) RxIntervalCycles(bits float64) float64 {
	if c.PortGbps <= 0 || c.ClockMHz <= 0 ||
		math.IsNaN(c.PortGbps) || math.IsInf(c.PortGbps, 0) ||
		math.IsNaN(c.ClockMHz) || math.IsInf(c.ClockMHz, 0) ||
		bits <= 0 || math.IsNaN(bits) || math.IsInf(bits, 0) {
		return 64
	}
	seconds := bits / (c.PortGbps * 1e9)
	iv := seconds * c.ClockMHz * 1e6
	if iv < 1e-9 {
		return 1e-9
	}
	return iv
}

// RxIntervalOrDefault is RxIntervalCycles for minimum-size 64-byte frames,
// truncated to whole cycles — kept for callers that want a coarse integer
// spacing; rate-accurate media use RxIntervalCycles with the carry
// accumulator instead.
func (c *Config) RxIntervalOrDefault() int64 {
	iv := int64(c.RxIntervalCycles(64 * 8))
	if iv < 1 {
		iv = 1
	}
	return iv
}

// ChargeRxDMA bills the Rx engine's buffer write and metadata write; the
// media's Inject calls it per packet. The media interface moves
// packet data in efficient interleaved 64-byte bursts, so its occupancy
// per frame is charged at a quarter of the ME word rate.
func (m *Machine) ChargeRxDMA(frameBytes, metaWords int) {
	if !m.Cfg.ChargeDMA {
		return
	}
	m.ctrl[2].access(m.now, (frameBytes+15)/16, &m.stats)
	m.ctrl[1].access(m.now, metaWords, &m.stats)
}

func (m *Machine) txTick() {
	r := m.Rings[cg.RingTx]
	w0, w1, ok := r.Get()
	if !ok {
		m.schedule(m.now+16, evTxTick, 0, 0, nil)
		return
	}
	frame := 64
	if m.media != nil {
		frame = m.media.Transmit(m, w0, w1)
	}
	if m.Cfg.ChargeDMA {
		m.ctrl[2].access(m.now, (frame+15)/16, &m.stats)
	}
	m.stats.TxPackets++
	m.stats.TxBits += uint64(frame * 8)
	latency := int64(-1)
	if ts, ok := m.rxStamp[w0]; ok {
		latency = m.now - ts
		m.lat.Record(latency)
		delete(m.rxStamp, w0)
	}
	if m.tracer != nil {
		m.tracer.Tx(m.now, w0, frame, latency)
	}
	// Pace the port: next transmit after the frame serializes.
	bits := float64(frame * 8)
	wait := int64(bits / (m.Cfg.PortGbps * 1e9) * m.Cfg.ClockMHz * 1e6)
	if wait < 1 {
		wait = 1
	}
	m.schedule(m.now+wait, evTxTick, 0, 0, nil)
}

// levelName names the controller levels for metric keys.
func levelName(level cg.MemLevel) string {
	switch level {
	case cg.MemScratch:
		return "scratch"
	case cg.MemSRAM:
		return "sram"
	case cg.MemDRAM:
		return "dram"
	default:
		return "local"
	}
}

// sampleTick appends one telemetry sample per instrument: per-ME
// utilization and per-controller saturation over the elapsed interval,
// per-controller queue backlog, and per-ring occupancy at this instant.
func (m *Machine) sampleTick() {
	interval := m.Cfg.SampleInterval
	w := m.Cfg.SampleWindow
	dt := float64(interval)
	for i := range m.MEs {
		d := m.stats.MEBusy[i] - m.lastME[i]
		m.lastME[i] = m.stats.MEBusy[i]
		m.reg.Series(metrics.MEUtil(i), w).Append(m.now, float64(d)/dt)
	}
	for _, c := range m.ctrl {
		d := m.stats.Busy[c.level] - m.lastBusy[c.level]
		m.lastBusy[c.level] = m.stats.Busy[c.level]
		name := levelName(c.level)
		m.reg.Series(metrics.CtrlSat(name), w).Append(m.now, float64(d)/dt)
		backlog := c.nextFree - m.now
		if backlog < 0 {
			backlog = 0
		}
		m.reg.Series(metrics.CtrlQueue(name), w).Append(m.now, float64(backlog))
	}
	for i, r := range m.Rings {
		m.reg.Series(metrics.RingOcc(i), w).Append(m.now, float64(r.Len()))
	}
	m.schedule(m.now+interval, evSample, 0, 0, nil)
}

func (m *Machine) xscaleTick() {
	var cost int64
	for _, ring := range m.XScaleRings {
		r := m.Rings[ring]
		if w0, w1, ok := r.Get(); ok {
			cost += m.XScaleStep(m, ring, w0, w1)
		}
	}
	if cost < 64 {
		cost = 64
	}
	m.schedule(m.now+cost, evXScale, 0, 0, nil)
}

// ---------------------------------------------------------------------------
// ALU semantics

func aluEval(op cg.ALUOp, a, b uint32) uint32 {
	switch op {
	case cg.AAdd:
		return a + b
	case cg.ASub:
		return a - b
	case cg.AMul:
		return a * b
	case cg.AAnd:
		return a & b
	case cg.AOr:
		return a | b
	case cg.AXor:
		return a ^ b
	case cg.AShl:
		return a << (b & 31)
	case cg.AShrU:
		return a >> (b & 31)
	case cg.AShrS:
		return uint32(int32(a) >> (b & 31))
	case cg.ANot:
		return ^a
	case cg.ANeg:
		return -a
	case cg.AMov:
		return a
	case cg.ADivU:
		if b == 0 {
			return 0
		}
		return a / b
	case cg.ARemU:
		if b == 0 {
			return 0
		}
		return a % b
	}
	return 0
}

func condEval(c cg.CondOp, a, b uint32) bool {
	switch c {
	case cg.CEq:
		return a == b
	case cg.CNe:
		return a != b
	case cg.CLtU:
		return a < b
	case cg.CLeU:
		return a <= b
	case cg.CLtS:
		return int32(a) < int32(b)
	case cg.CLeS:
		return int32(a) <= int32(b)
	}
	return false
}

func beWord(b []byte) uint32 {
	return uint32(b[0])<<24 | uint32(b[1])<<16 | uint32(b[2])<<8 | uint32(b[3])
}

func putBEWord(b []byte, v uint32) {
	b[0] = byte(v >> 24)
	b[1] = byte(v >> 16)
	b[2] = byte(v >> 8)
	b[3] = byte(v)
}

// ResetStats clears measurement counters (after warm-up) while keeping
// machine state (queues, caches, register files) intact. Ring high-water
// marks restart at the current occupancy and the telemetry sampler's
// baselines reset with the counters.
func (m *Machine) ResetStats() {
	base := m.now
	m.stats = Stats{
		MEAccesses:   map[AccessKey]uint64{},
		MEInstrs:     make([]uint64, m.Cfg.NumMEs),
		MEBusy:       make([]int64, m.Cfg.NumMEs),
		RingOverflow: make([]uint64, m.Cfg.NumRings),
		CAMLookups:   make([]uint64, m.Cfg.NumMEs),
		CAMHits:      make([]uint64, m.Cfg.NumMEs),
		CAMClears:    make([]uint64, m.Cfg.NumMEs),
	}
	m.statsBase = base
	m.acc = [numMemLevels * numAccessClasses]uint64{}
	m.lastBusy = [4]int64{}
	m.lastME = make([]int64, m.Cfg.NumMEs)
	m.lat.Reset()
	// rxStamp is machine state, not a counter: packets in flight keep
	// their true arrival cycle across the warm-up reset.
	for _, r := range m.Rings {
		r.resetHWM()
	}
	// Window-scoped tracers (stall attribution) restart with the counters
	// so warm-up cycles never appear in the breakdown.
	if wr, ok := m.tracer.(windowResetter); ok {
		wr.ResetWindow(base)
	}
}

// Snapshot returns an immutable deep copy of the run statistics. The
// machine's internal counters cannot be mutated through it; hooks that
// need to account packets use the Observer's accounting methods instead.
// The execution engine accumulates classified accesses in a flat counter
// array; they fold into the MEAccesses map here, at snapshot time.
func (m *Machine) Snapshot() Stats {
	s := m.stats.clone()
	for i, v := range m.acc {
		if v != 0 {
			s.MEAccesses[AccessKey{cg.MemLevel(i / numAccessClasses), cg.AccessClass(i % numAccessClasses)}] += v
		}
	}
	return s
}

// NoteRxPacket counts one received packet.
//
// Deprecated: use Observer().RxPacket — the Note* family moved onto the
// Observer surface; this shim lasts one release.
func (m *Machine) NoteRxPacket(id uint32, frameBytes int) { m.Observer().RxPacket(id, frameBytes) }

// NoteRxDropped counts one saturation loss at the Rx ring.
//
// Deprecated: use Observer().RxDrop.
func (m *Machine) NoteRxDropped(frameBytes int) { m.Observer().RxDrop(frameBytes) }

// NoteFreedPacket counts one dropped-or-recycled packet.
//
// Deprecated: use Observer().PacketFreed.
func (m *Machine) NoteFreedPacket(id uint32) { m.Observer().PacketFreed(id) }

// LatencySnapshot summarizes the Rx→Tx latency (in core cycles) of every
// packet transmitted since the last stats reset.
//
// Deprecated: use Observer().Latency.
func (m *Machine) LatencySnapshot() metrics.HistogramSnapshot {
	return m.Observer().Latency()
}

// RingMaxOcc returns each ring's high-water occupancy since the last
// stats reset, indexed by ring number.
//
// Deprecated: use Observer().RingMaxOcc.
func (m *Machine) RingMaxOcc() []int { return m.Observer().RingMaxOcc() }

// SetPC places a thread at an absolute entry point (the runtime uses this
// to split one ME's threads across pipeline stages when fewer MEs than
// stages are enabled).
func (t *Thread) SetPC(pc int) { t.pc = pc }
