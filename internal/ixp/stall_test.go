package ixp

import (
	"testing"

	"shangrila/internal/cg"
)

// runTraced builds the standard two-ME forwarding loop with a StallTracer
// attached from cycle 0 and runs it for cycles.
func runTraced(t *testing.T, cycles int64) (*Machine, *StallTracer) {
	t.Helper()
	cfg := DefaultConfig()
	cfg.RingSlots = 64
	m, err := New(cfg, WithMedia(&FixedDescMedia{}))
	if err != nil {
		t.Fatal(err)
	}
	st := NewStallTracer(cfg.NumMEs, cfg.ThreadsPerME)
	m.Observer().SetTracer(st)
	m.GrowRing(cg.RingFree, 128)
	for i := 0; i < 100; i++ {
		m.Rings[cg.RingFree].Put(uint32(i), 64<<16|128)
	}
	m.LoadProgram(0, loopProg())
	m.LoadProgram(1, loopProg())
	if err := m.Run(cycles); err != nil {
		t.Fatal(err)
	}
	return m, st
}

// checkConservation asserts the breakdown's defining invariant: every ME
// row's categories sum exactly to the window — no cycle is double-counted
// or lost.
func checkConservation(t *testing.T, rep *StallReport) {
	t.Helper()
	if rep == nil {
		t.Fatal("no stall report")
	}
	for _, me := range rep.MEs {
		if me.Cycles != rep.Cycles {
			t.Errorf("ME%d window %d != report window %d", me.ME, me.Cycles, rep.Cycles)
		}
		if got := me.Total(); got != me.Cycles {
			t.Errorf("ME%d categories sum to %d, want exactly %d (compute %d, ring %d, idle %d, lat %v, q %v)",
				me.ME, got, me.Cycles, me.Compute, me.Ring, me.Idle, me.MemLatency, me.MemQueue)
		}
	}
	tot := rep.Totals()
	if tot.Total() != tot.Cycles {
		t.Errorf("Totals sum %d != %d", tot.Total(), tot.Cycles)
	}
}

// TestStallConservation: the per-ME stall categories account for 100% of
// the simulated window, exactly, on a live forwarding workload — and keep
// doing so after a warm-up reset.
func TestStallConservation(t *testing.T) {
	m, _ := runTraced(t, 200_000)
	rep := m.Observer().StallReport()
	checkConservation(t, rep)
	if rep.Cycles == 0 {
		t.Fatal("empty window")
	}

	// Busy MEs show compute; disabled MEs are pure idle.
	if rep.MEs[0].Compute == 0 {
		t.Error("ME0 ran a forwarding loop but shows zero compute")
	}
	idleME := rep.MEs[len(rep.MEs)-1]
	if idleME.Idle != rep.Cycles {
		t.Errorf("disabled ME: idle %d, want the whole window %d", idleME.Idle, rep.Cycles)
	}
	// The loop issues scratch ring/memory ops; some blocked time must be
	// attributed to the scratch controller (latency and/or queueing).
	busy := rep.MEs[0]
	if busy.MemLatency["scratch"]+busy.MemQueue["scratch"] == 0 {
		t.Error("forwarding loop shows no scratch stall time")
	}
	// Regression: the machine reports a window's accesses before the window
	// itself, so the wake ending a gap may already be displaced by the woken
	// thread's next access; those gaps must still attribute to memory. A
	// leak shows up as ME-level idle far above the threads' own idle share —
	// an engine is only idle when its threads have nothing to do (failed
	// pops), which the thread rows record directly.
	var thrIdle, thrCycles int64
	for _, th := range busy.Threads {
		thrIdle += th.Idle
		thrCycles += busy.Cycles
	}
	if meIdle, tIdle := busy.StallShare("idle"), float64(thrIdle)/float64(thrCycles); meIdle > tIdle+0.1 {
		t.Errorf("busy ME idle share %.2f exceeds thread idle share %.2f (displaced wakes leaking to idle):\n%s",
			meIdle, tIdle, rep)
	}

	// Warm-up pattern: reset the window mid-run, keep going, and the new
	// window must balance exactly too (in-flight blocks straddle the
	// boundary).
	m.ResetStats()
	if err := m.Run(150_000); err != nil {
		t.Fatal(err)
	}
	rep2 := m.Observer().StallReport()
	checkConservation(t, rep2)
	if rep2.Cycles >= rep.Cycles+150_001 || rep2.Cycles < 140_000 {
		t.Errorf("post-reset window %d, want ~150000", rep2.Cycles)
	}
}

// TestStallThreadRowsNest: thread rows attribute each thread's own blocked
// intervals; threads block concurrently, so each row stays within the
// window but rows are not required to sum to it.
func TestStallThreadRowsNest(t *testing.T) {
	m, _ := runTraced(t, 200_000)
	rep := m.Observer().StallReport()
	for _, me := range rep.MEs {
		if len(me.Threads) != m.Cfg.ThreadsPerME {
			t.Fatalf("ME%d has %d thread rows, want %d", me.ME, len(me.Threads), m.Cfg.ThreadsPerME)
		}
		for _, th := range me.Threads {
			if th.Compute < 0 || th.Ring < 0 || th.Idle < 0 {
				t.Errorf("ME%d/T%d negative category: %+v", me.ME, th.Thread, th.Stall)
			}
			if th.Compute > me.Cycles {
				t.Errorf("ME%d/T%d compute %d exceeds window %d", me.ME, th.Thread, th.Compute, me.Cycles)
			}
		}
	}
}

// TestStallShare pins the category arithmetic of the share accessor.
func TestStallShare(t *testing.T) {
	s := Stall{
		Cycles:  1000,
		Compute: 400,
		Ring:    100,
		Idle:    100,
		MemLatency: map[string]int64{
			"scratch": 50, "sram": 50, "dram": 100,
		},
		MemQueue: map[string]int64{
			"scratch": 0, "sram": 50, "dram": 150,
		},
	}
	checks := map[string]float64{
		"compute":           0.4,
		"ring":              0.1,
		"idle":              0.1,
		"mem_latency":       0.2,
		"mem_queue":         0.2,
		"mem_queue.dram":    0.15,
		"mem_latency.sram":  0.05,
		"mem_queue.scratch": 0,
		"bogus":             0,
	}
	for cat, want := range checks {
		if got := s.StallShare(cat); got != want {
			t.Errorf("StallShare(%q) = %v, want %v", cat, got, want)
		}
	}
	if s.Total() != s.Cycles {
		t.Errorf("Total %d != Cycles %d", s.Total(), s.Cycles)
	}
	var empty Stall
	if empty.StallShare("compute") != 0 {
		t.Error("empty row share not 0")
	}
}

// TestStallIdleAttribution: an enabled ME spinning on an empty Rx ring
// (failed pops) charges its blocked time to idle, not to memory.
func TestStallIdleAttribution(t *testing.T) {
	cfg := DefaultConfig()
	m, err := New(cfg) // no media: the Rx ring stays empty
	if err != nil {
		t.Fatal(err)
	}
	st := NewStallTracer(cfg.NumMEs, cfg.ThreadsPerME)
	m.Observer().SetTracer(st)
	m.LoadProgram(0, loopProg())
	if err := m.Run(100_000); err != nil {
		t.Fatal(err)
	}
	rep := m.Observer().StallReport()
	checkConservation(t, rep)
	me0 := rep.MEs[0]
	if share := me0.StallShare("idle"); share < 0.5 {
		t.Errorf("starved ME idle share %.2f, want > 0.5:\n%s", share, rep)
	}
	if me0.StallShare("mem_queue") > 0.1 {
		t.Errorf("starved ME shows memory queueing:\n%s", rep)
	}
}

// TestMultiTracerComposition: a MultiTracer fans events out to every sink,
// collapses trivial cases, and forwards window resets.
func TestMultiTracerComposition(t *testing.T) {
	if MultiTracer() != nil {
		t.Error("empty MultiTracer != nil")
	}
	st := NewStallTracer(1, 2)
	if MultiTracer(st) != Tracer(st) {
		t.Error("single-element MultiTracer not collapsed")
	}
	if MultiTracer(nil, st, nil) != Tracer(st) {
		t.Error("nils not dropped from MultiTracer")
	}

	ct := NewChromeTracer(600)
	mt := MultiTracer(st, ct)
	mt.ThreadRun(0, 0, 0, 10, YieldMem)
	mt.MemAccess(10, 0, 0, cg.MemDRAM, 2, 15, 130)
	if ct.Len() != 2 {
		t.Errorf("chrome sink saw %d events, want 2", ct.Len())
	}
	// ResetWindow reaches the StallTracer member through the composite.
	if wr, ok := mt.(windowResetter); !ok {
		t.Fatal("multiTracer does not forward window resets")
	} else {
		wr.ResetWindow(500)
	}
	rep := st.Report(700, nil)
	if rep.Cycles != 200 {
		t.Errorf("window after composite reset = %d, want 200", rep.Cycles)
	}
	checkConservation(t, rep)
}

// BenchmarkTracerOverhead measures the per-cycle cost of the tracing hooks:
// "disabled" is the production configuration (nil tracer — every emit site
// is one pointer check) and must stay within noise of pre-tracing builds;
// the sink variants bound the enabled cost.
func BenchmarkTracerOverhead(b *testing.B) {
	bench := func(b *testing.B, mk func(cfg Config) Tracer) {
		cfg := DefaultConfig()
		cfg.RingSlots = 64
		cfg.SampleInterval = 0
		m, err := New(cfg, WithMedia(&FixedDescMedia{}))
		if err != nil {
			b.Fatal(err)
		}
		if tr := mk(cfg); tr != nil {
			m.Observer().SetTracer(tr)
		}
		m.GrowRing(cg.RingFree, 128)
		for i := 0; i < 100; i++ {
			m.Rings[cg.RingFree].Put(uint32(i), 64<<16|128)
		}
		m.LoadProgram(0, loopProg())
		m.LoadProgram(1, loopProg())
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := m.Run(10_000); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("disabled", func(b *testing.B) {
		bench(b, func(Config) Tracer { return nil })
	})
	b.Run("stall", func(b *testing.B) {
		bench(b, func(cfg Config) Tracer {
			return NewStallTracer(cfg.NumMEs, cfg.ThreadsPerME)
		})
	})
	b.Run("chrome", func(b *testing.B) {
		bench(b, func(Config) Tracer {
			ct := NewChromeTracer(600)
			ct.Limit = 1 << 16 // bounded: excess events drop, as in production
			return ct
		})
	})
}
