package ixp

import (
	"errors"
	"strings"
	"testing"

	"shangrila/internal/cg"
)

// randALUOps is the full ALU op set the staging compiler specializes.
var randALUOps = []cg.ALUOp{
	cg.AAdd, cg.ASub, cg.AMul, cg.AAnd, cg.AOr, cg.AXor,
	cg.AShl, cg.AShrU, cg.AShrS, cg.ANot, cg.ANeg, cg.AMov,
	cg.ADivU, cg.ARemU,
}

// randRunProg generates a random straight-line compute program (ALU,
// immediates, nops) closed by a yield and a back-branch, exercising the
// staging compiler's folding and emission paths: wired-zero operands,
// zero immediates (division corner), fused pairs, dead constant writes.
func randRunProg(rng *lcg) *cg.Program {
	n := int(rng.next()%40) + 1
	var code []*cg.Instr
	for i := 0; i < n; i++ {
		reg := func() cg.PReg { return cg.PReg(rng.next() % 8) }
		src := func() cg.PReg {
			if rng.next()%8 == 0 {
				return cg.NoPReg // predecodes to the wired zero
			}
			return reg()
		}
		imm := func() uint32 {
			switch rng.next() % 4 {
			case 0:
				return 0
			case 1:
				return uint32(rng.next() % 5)
			default:
				return uint32(rng.next())
			}
		}
		switch rng.next() % 4 {
		case 0:
			code = append(code, &cg.Instr{Op: cg.IImmed, Dst: reg(), Imm: imm()})
		case 1:
			code = append(code, &cg.Instr{Op: cg.IALU,
				ALU: randALUOps[rng.next()%uint64(len(randALUOps))],
				Dst: reg(), SrcA: src(), SrcB: src()})
		case 2:
			code = append(code, &cg.Instr{Op: cg.IALUImm,
				ALU: randALUOps[rng.next()%uint64(len(randALUOps))],
				Dst: reg(), SrcA: src(), Imm: imm()})
		default:
			code = append(code, &cg.Instr{Op: cg.INop})
		}
	}
	code = append(code, &cg.Instr{Op: cg.ICtxArb}, &cg.Instr{Op: cg.IBr, Target: 0})
	return &cg.Program{Name: "randrun", Code: code}
}

// TestCompiledRunMatchesInterpreter is the staging compiler's property
// test: for every compiled run entry point of many random programs, the
// specialized closure must leave the register file exactly as execRun
// does, and land on the same next pc.
func TestCompiledRunMatchesInterpreter(t *testing.T) {
	var rng lcg = 1
	for trial := 0; trial < 500; trial++ {
		p := randRunProg(&rng)
		d := predecode(p)
		cp := compileProg(d, p)
		for pc := range cp.slots {
			s := &cp.slots[pc]
			if s.run == nil {
				continue
			}
			var want, got regFile
			for r := 0; r < cg.NumRegs; r++ {
				v := uint32(rng.next())
				want[r], got[r] = v, v
			}
			nextPC := execRun(d.code, &want, pc, int64(s.runLen))
			s.run(&got)
			if got != want {
				t.Fatalf("trial %d entry %d: register file diverged\ncompiled:    %v\ninterpreted: %v\nprog: %v",
					trial, pc, got, want, p.Code)
			}
			if int32(nextPC) != s.next {
				t.Fatalf("trial %d entry %d: next pc %d, interpreter went to %d",
					trial, pc, s.next, nextPC)
			}
		}
	}
}

// TestCompiledDeterminism pins the compiled engine — single-goroutine
// dispatch and every sharded composition — bit-identical to the serial
// reference across two Run windows on the forwarding loop and the
// rich shared-state program.
func TestCompiledDeterminism(t *testing.T) {
	for _, prog := range []*cg.Program{loopProg(), richProg()} {
		ref, refSt := buildEngineMachine(t, EngineSerial{}, prog)
		if err := ref.Run(60_000); err != nil {
			t.Fatal(err)
		}
		if err := ref.Run(140_000); err != nil {
			t.Fatal(err)
		}
		for _, shards := range []int{0, 1, 2, 4, DefaultConfig().NumMEs} {
			m, st := buildEngineMachine(t, EngineCompiled{Shards: shards}, prog)
			if name, got := m.EngineInfo(); name != "compiled" || got != shards {
				t.Fatalf("EngineInfo = (%s, %d), want (compiled, %d)", name, got, shards)
			}
			if err := m.Run(60_000); err != nil {
				t.Fatal(err)
			}
			if err := m.Run(140_000); err != nil {
				t.Fatal(err)
			}
			compareMachines(t, ref, m, refSt, st,
				prog.Name+"/compiled-shards="+itoa(shards))
		}
	}
}

// TestCompiledFaultMatchesSerial checks machine checks surface at the
// same cycle with the same text and statistics under compiled dispatch.
func TestCompiledFaultMatchesSerial(t *testing.T) {
	bad := &cg.Program{Name: "bad", Code: []*cg.Instr{
		{Op: cg.IALUImm, ALU: cg.AAdd, Dst: 1, SrcA: 1, Imm: 1},
		{Op: cg.IBccImm, Cond: cg.CLtU, SrcA: 1, Imm: 3000, Target: 0},
		{Op: cg.IMem, Level: cg.MemSRAM, Addr: cg.NoPReg, AddrOff: 1 << 30,
			NWords: 1, Data: []cg.PReg{2}, Class: cg.ClassAppData},
		{Op: cg.IBr, Target: 0},
	}}
	run := func(spec EngineSpec) (*Machine, error) {
		m, err := New(DefaultConfig(), WithEngine(spec))
		if err != nil {
			t.Fatal(err)
		}
		m.LoadProgram(0, loopProg())
		m.LoadProgram(1, bad)
		return m, m.Run(500_000)
	}
	ref, refErr := run(EngineSerial{})
	if refErr == nil {
		t.Fatalf("expected a serial fault")
	}
	for _, shards := range []int{0, 4} {
		comp, compErr := run(EngineCompiled{Shards: shards})
		if compErr == nil {
			t.Fatalf("shards=%d: expected a fault", shards)
		}
		if refErr.Error() != compErr.Error() {
			t.Errorf("shards=%d: fault text diverged:\nserial:   %v\ncompiled: %v",
				shards, refErr, compErr)
		}
		compareMachines(t, ref, comp, nil, nil, "fault/compiled-shards="+itoa(shards))
	}
}

// TestCompiledEngineValidation pins the EngineCompiled configuration
// surface: typed construction-time failures for out-of-range shard
// counts, and the serial-dispatch/sharded split EngineInfo reports.
func TestCompiledEngineValidation(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Engine = EngineCompiled{Shards: -1}
	var ece *EngineConfigError
	if _, err := New(cfg); !errors.As(err, &ece) {
		t.Fatalf("Shards=-1: got %v, want *EngineConfigError", err)
	} else if ece.Shards != -1 || ece.NumMEs != cfg.NumMEs {
		t.Errorf("error fields = %+v", ece)
	}
	cfg.Engine = EngineCompiled{Shards: cfg.NumMEs + 1}
	if _, err := New(cfg); !errors.As(err, &ece) {
		t.Fatalf("Shards=NumMEs+1: got %v, want *EngineConfigError", err)
	}
	m, err := New(DefaultConfig(), WithEngine(EngineCompiled{}))
	if err != nil {
		t.Fatal(err)
	}
	if name, shards := m.EngineInfo(); name != "compiled" || shards != 0 {
		t.Errorf("EngineInfo = (%s, %d), want (compiled, 0)", name, shards)
	}
	m, err = New(DefaultConfig(), WithEngine(EngineCompiled{Shards: 3}))
	if err != nil {
		t.Fatal(err)
	}
	if name, shards := m.EngineInfo(); name != "compiled" || shards != 3 {
		t.Errorf("EngineInfo = (%s, %d), want (compiled, 3)", name, shards)
	}
}

// TestParseEngine pins the single source of truth for engine names:
// every listed name parses to a spec reporting that name, and unknown
// names are rejected with the full valid set.
func TestParseEngine(t *testing.T) {
	for _, name := range EngineNames() {
		spec, err := ParseEngine(name, 0)
		if err != nil {
			t.Fatalf("ParseEngine(%q): %v", name, err)
		}
		got := "serial" // nil spec is the serial default
		if spec != nil {
			got = spec.EngineName()
		}
		if got != name {
			t.Errorf("ParseEngine(%q) → spec %q", name, got)
		}
	}
	if _, err := ParseEngine("", 0); err != nil {
		t.Errorf("empty engine name should default to serial: %v", err)
	}
	if _, err := ParseEngine("serial", 2); err == nil {
		t.Errorf("serial with shards should be rejected")
	}
	_, err := ParseEngine("warp", 0)
	if err == nil {
		t.Fatalf("unknown engine accepted")
	}
	for _, name := range EngineNames() {
		if !strings.Contains(err.Error(), name) {
			t.Errorf("unknown-engine error %q does not list %q", err, name)
		}
	}
	spec, err := ParseEngine("compiled", 4)
	if err != nil {
		t.Fatal(err)
	}
	if ec, ok := spec.(EngineCompiled); !ok || ec.Shards != 4 {
		t.Errorf("ParseEngine(compiled, 4) = %#v", spec)
	}
}

// fillerALUProg builds filler ALUImm instructions followed by the given
// closing instructions and the loop-back branch.
func fillerALUProg(filler int, closing ...*cg.Instr) *cg.Program {
	code := make([]*cg.Instr, 0, filler+len(closing)+1)
	for i := 0; i < filler; i++ {
		code = append(code, &cg.Instr{Op: cg.IALUImm, ALU: cg.AAdd, Dst: 0, SrcA: 0, Imm: 1})
	}
	code = append(code, closing...)
	code = append(code, &cg.Instr{Op: cg.IBr, Target: 0})
	return &cg.Program{Name: "filler", Code: code}
}

// compareThreadState asserts every thread's architectural state (pc,
// scheduler state, full register file) and the ME scheduler cursors are
// identical between two machines.
func compareThreadState(t *testing.T, ref, got *Machine, label string) {
	t.Helper()
	for i := range ref.MEs {
		rmx, gmx := ref.MEs[i], got.MEs[i]
		if rmx.rrNext != gmx.rrNext || rmx.readyMask != gmx.readyMask {
			t.Errorf("%s: ME%d scheduler diverged: (rrNext=%d mask=%x) vs (rrNext=%d mask=%x)",
				label, i, rmx.rrNext, rmx.readyMask, gmx.rrNext, gmx.readyMask)
		}
		for j := range rmx.threads {
			a, b := rmx.threads[j], gmx.threads[j]
			if a.pc != b.pc || a.state != b.state || a.regs != b.regs {
				t.Errorf("%s: ME%d thread %d diverged: pc %d/%d state %d/%d",
					label, i, j, a.pc, b.pc, a.state, b.state)
			}
		}
	}
}

// TestCompiledBlockExitEdges pins the block-exit edge cases identical
// across the interpreted and compiled engines:
//
//   - the activation budget splitting a fused superinstruction, so the
//     next activation enters the pair at its tail label;
//   - a run ending exactly at a voluntary yield with the budget's last
//     instruction;
//   - budget exhaustion mid-run, resuming at a pc that is not a static
//     entry point.
func TestCompiledBlockExitEdges(t *testing.T) {
	cases := []struct {
		name string
		prog *cg.Program
	}{
		// 4095 filler + IImmed/IALU fused pair: the 4096-instruction
		// budget executes the fused head alone and resumes at the tail.
		{"fused-tail-entry", fillerALUProg(4095,
			&cg.Instr{Op: cg.IImmed, Dst: 1, Imm: 5},
			&cg.Instr{Op: cg.IALU, ALU: cg.AAdd, Dst: 2, SrcA: 1, SrcB: 0},
			&cg.Instr{Op: cg.ICtxArb})},
		// 4095-instruction run, then the yield consumes the budget's
		// exact last unit.
		{"yield-at-budget-edge", fillerALUProg(4095, &cg.Instr{Op: cg.ICtxArb})},
		// A 6000-instruction run: the budget exhausts mid-run and the
		// thread resumes inside it, off the compiled entry points.
		{"budget-split-mid-run", fillerALUProg(6000, &cg.Instr{Op: cg.ICtxArb})},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			build := func(spec EngineSpec) *Machine {
				cfg := DefaultConfig()
				cfg.SampleInterval = 0
				m, err := New(cfg, WithEngine(spec))
				if err != nil {
					t.Fatal(err)
				}
				for me := 0; me < cfg.NumMEs; me++ {
					m.LoadProgram(me, tc.prog)
				}
				// Two windows so resume points cross Run boundaries too.
				if err := m.Run(9_000); err != nil {
					t.Fatal(err)
				}
				if err := m.Run(21_000); err != nil {
					t.Fatal(err)
				}
				return m
			}
			ref := build(EngineSerial{})
			comp := build(EngineCompiled{})
			compareMachines(t, ref, comp, nil, nil, tc.name)
			compareThreadState(t, ref, comp, tc.name)
		})
	}
}

// TestCompiledRunSteadyStateAllocFree extends the zero-alloc regression
// to the compiled dispatcher: staged closures, the exit-closure context
// and the block-exit protocol must not allocate in the steady state.
func TestCompiledRunSteadyStateAllocFree(t *testing.T) {
	cfg := DefaultConfig()
	cfg.SampleInterval = 0
	m, err := New(cfg, WithEngine(EngineCompiled{}))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < cfg.NumMEs; i++ {
		m.LoadProgram(i, computeProg())
	}
	if err := m.Run(50_000); err != nil { // warm-up: grow buckets, registries
		t.Fatal(err)
	}
	avg := testing.AllocsPerRun(200, func() {
		if err := m.Run(500); err != nil {
			t.Fatal(err)
		}
	})
	if avg != 0 {
		t.Errorf("steady-state compiled Run allocates %v objects per call, want 0", avg)
	}
}

// BenchmarkEngineALU measures raw host throughput of the execution
// engines on an ALU-dominated kernel — the code shape staged compilation
// targets: 96-instruction straight-line runs whose interpreter decode
// dispatch collapses into one specialized closure call per activation.
// The engine name is a sub-benchmark element so benchjson keys the
// entries apart; simcycles/s is the headline.
func BenchmarkEngineALU(b *testing.B) {
	prog := fillerALUProg(96, &cg.Instr{Op: cg.ICtxArb})
	for _, tc := range []struct {
		name string
		spec EngineSpec
	}{
		{"serial", nil},
		{"compiled", EngineCompiled{}},
	} {
		b.Run(tc.name, func(b *testing.B) {
			cfg := DefaultConfig()
			cfg.SampleInterval = 0
			var opts []Option
			if tc.spec != nil {
				opts = append(opts, WithEngine(tc.spec))
			}
			m, err := New(cfg, opts...)
			if err != nil {
				b.Fatal(err)
			}
			for i := 0; i < cfg.NumMEs; i++ {
				m.LoadProgram(i, prog)
			}
			if err := m.Run(50_000); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := m.Run(10_000); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(b.N)*10_000/b.Elapsed().Seconds(), "simcycles/s")
		})
	}
}
