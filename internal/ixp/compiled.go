package ixp

import "math/bits"

// The compiled engine's activation dispatcher: runME with the predecoded
// dispatch switch replaced by staged closures (compile.go). Thread
// selection, budget accounting, fault handling, tracing, statistics and
// round-robin rotation mirror runME line for line — the differential
// golden suite pins the two bit-identical.

// runMECompiled executes the next ready thread over the staged program.
func (m *Machine) runMECompiled(meIdx int) {
	mx := m.MEs[meIdx]
	if !mx.enabled || mx.dec == nil || mx.cdec == nil {
		return
	}
	// Round-robin pick, exactly as runME.
	ti := -1
	nth := len(mx.threads)
	if nth <= 64 {
		if mx.readyMask == 0 {
			return // re-activated when a thread completes
		}
		rot := mx.readyMask>>uint(mx.rrNext) | mx.readyMask<<uint(nth-mx.rrNext)
		ti = mx.rrNext + bits.TrailingZeros64(rot)
		if ti >= nth {
			ti -= nth
		}
	} else {
		for k := 0; k < nth; k++ {
			cand := (mx.rrNext + k) % nth
			if mx.threads[cand].state == tReady {
				ti = cand
				break
			}
		}
		if ti < 0 {
			return
		}
	}
	th := mx.threads[ti]
	windowStart := m.now
	cycles := int64(0)
	instrs := uint64(0)
	code := mx.dec.code
	slots := mx.cdec.slots
	regs := &th.regs
	pc := th.pc
	budget := int64(maxRunInstrs)
	reason := YieldBudget
	c := &m.cctx
	c.m, c.mx, c.th, c.regs, c.ti = m, mx, th, regs, ti
loop:
	for budget > 0 {
		if pc < 0 || pc >= len(slots) {
			th.pc = pc
			m.stats.MEInstrs[meIdx] += instrs
			m.fail("ME%d thread %d: pc %d out of range", meIdx, ti, pc)
			if m.tracer != nil {
				m.tracer.ThreadRun(windowStart, meIdx, ti, cycles, YieldFault)
			}
			return
		}
		s := &slots[pc]
		if s.runLen > 0 {
			n := int64(s.runLen)
			if s.run != nil && n <= budget {
				// Whole run fits the budget: one native call, one batched
				// accounting step.
				s.run(regs)
				pc = int(s.next)
			} else {
				// Mid-run entry or budget split: the interpreter's tight
				// loop is the semantics of record for partial runs.
				if n > budget {
					n = budget
				}
				pc = execRun(code, regs, pc, n)
			}
			instrs += uint64(n)
			cycles += n
			budget -= n
			continue
		}
		// Block edge: the uniform terminator step, then the typed exit.
		instrs++
		cycles++
		budget--
		c.cycles, c.instrs, c.budget = cycles, instrs, budget
		ex := s.exit(c)
		cycles, instrs, budget = c.cycles, c.instrs, c.budget
		switch ex.kind {
		case cexNext:
			pc = int(ex.next)
		case cexBlock:
			pc = int(ex.next)
			th.state = tBlocked
			mx.setReady(ti, false)
			m.schedule(ex.at, evReady, meIdx, ti, nil)
			reason = ex.reason
			break loop
		case cexYield:
			pc = int(ex.next)
			reason = YieldCtx
			break loop
		case cexHalt:
			pc = int(ex.next)
			reason = YieldHalt
			break loop
		default: // cexFault: the closure recorded the machine check
			th.pc = pc
			m.stats.MEInstrs[meIdx] += instrs
			if m.tracer != nil {
				m.tracer.ThreadRun(windowStart, meIdx, ti, cycles, YieldFault)
			}
			return
		}
	}
	th.pc = pc
	if m.tracer != nil {
		m.tracer.ThreadRun(windowStart, meIdx, ti, cycles, reason)
	}
	m.stats.MEInstrs[meIdx] += instrs
	m.stats.MEBusy[meIdx] += cycles
	if reason == YieldBudget {
		// Budget exhaustion chunks the event loop without a context
		// switch, exactly as runME.
		mx.rrNext = ti
	} else {
		mx.rrNext = (ti + 1) % len(mx.threads)
	}
	hasReady := mx.readyMask != 0
	if nth > 64 {
		hasReady = false
		for _, t2 := range mx.threads {
			if t2.state == tReady {
				hasReady = true
				break
			}
		}
	}
	if hasReady {
		mx.scheduled = true
		m.schedule(m.now+cycles+1, evActivate, meIdx, 0, nil)
	}
}
