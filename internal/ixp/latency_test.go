package ixp

import (
	"math"
	"testing"

	"shangrila/internal/cg"
)

// openMedia injects at line rate for a fixed frame size and drops (with
// accounting) instead of retrying when the Rx path is saturated — the
// open-loop traffic model the workload engine uses, reduced to its
// essentials for machine-level tests.
type openMedia struct {
	frame int
}

func (o *openMedia) Inject(m *Machine) float64 {
	id, _, ok := m.Rings[cg.RingFree].Get()
	switch {
	case !ok || m.Rings[cg.RingRx].Space() == 0:
		if ok {
			m.Rings[cg.RingFree].Put(id, 0)
		}
		m.Observer().RxDrop(o.frame)
	default:
		m.Rings[cg.RingRx].Put(id, 64<<16|128)
		m.Observer().RxPacket(id, o.frame)
	}
	return m.Cfg.RxIntervalCycles(float64(o.frame * 8))
}

func (o *openMedia) Transmit(m *Machine, w0, w1 uint32) int {
	m.Rings[cg.RingFree].Put(w0, 64<<16|128)
	return o.frame
}

// TestOfferedLoadAccuracy pins the fractional-cycle Rx pacing: at 2.5
// Gbps and 600 MHz a 64B frame spans 122.88 cycles, so whole-cycle
// truncation alone would overshoot the configured rate by 0.72%. The
// carry accumulator must keep the measured offered load within 0.5%.
func TestOfferedLoadAccuracy(t *testing.T) {
	cfg := DefaultConfig()
	cfg.PortGbps = 2.5
	media := &openMedia{frame: 64}
	m, err := New(cfg, WithMedia(media))
	if err != nil {
		t.Fatal(err)
	}
	m.GrowRing(cg.RingFree, 256)
	for i := 0; i < 200; i++ {
		m.Rings[cg.RingFree].Put(uint32(i), 64<<16|128)
	}
	// No program drains the Rx ring: it saturates and further arrivals
	// drop, but offered load counts accepted and dropped bits alike.
	if err := m.Run(2_000_000); err != nil {
		t.Fatal(err)
	}
	st := m.Snapshot()
	offered := st.OfferedGbps(cfg.ClockMHz)
	if rel := math.Abs(offered-cfg.PortGbps) / cfg.PortGbps; rel > 0.005 {
		t.Errorf("offered load %.4f Gbps deviates %.2f%% from configured %.1f (want <= 0.5%%)",
			offered, rel*100, cfg.PortGbps)
	}
	if st.RxDropped == 0 {
		t.Error("undrained Rx ring produced no saturation drops")
	}
}

// TestLatencyRecorded checks the Rx→Tx accounting: every transmitted
// packet yields exactly one latency sample and the quantiles are ordered.
func TestLatencyRecorded(t *testing.T) {
	m := runLoop(t, 1)
	st := m.Snapshot()
	lat := m.LatencySnapshot()
	if lat.Count == 0 || lat.Count != st.TxPackets {
		t.Fatalf("latency samples %d, want one per transmitted packet (%d)",
			lat.Count, st.TxPackets)
	}
	if lat.P50 <= 0 || lat.P90 < lat.P50 || lat.P99 < lat.P90 || lat.Max < lat.P99 {
		t.Errorf("quantiles out of order: %+v", lat)
	}
	// Reset discards the window's samples but keeps in-flight stamps:
	// continuing the run keeps producing samples.
	m.ResetStats()
	if m.LatencySnapshot().Count != 0 {
		t.Error("latency histogram survived ResetStats")
	}
	if err := m.Run(100_000); err != nil {
		t.Fatal(err)
	}
	if m.LatencySnapshot().Count == 0 {
		t.Error("no latency samples after warm-up reset")
	}
}

// TestDropCauseRxSaturation: an undrained Rx ring attributes every loss
// to Rx saturation and none to channel-ring overflow.
func TestDropCauseRxSaturation(t *testing.T) {
	cfg := DefaultConfig()
	cfg.RingSlots = 8
	m, err := New(cfg, WithMedia(&openMedia{frame: 64}))
	if err != nil {
		t.Fatal(err)
	}
	m.GrowRing(cg.RingFree, 64)
	for i := 0; i < 32; i++ {
		m.Rings[cg.RingFree].Put(uint32(i), 64<<16|128)
	}
	if err := m.Run(500_000); err != nil {
		t.Fatal(err)
	}
	st := m.Snapshot()
	if st.RxDropped == 0 {
		t.Fatal("no Rx saturation drops")
	}
	if st.ChanOverflows() != 0 {
		t.Errorf("idle MEs produced %d channel-ring overflows", st.ChanOverflows())
	}
	if st.DropRate() <= 0 || st.DropRate() >= 1 {
		t.Errorf("drop rate %v out of (0,1)", st.DropRate())
	}
}

// TestDropCauseChannelOverflow: a stage pushing into a full, undrained
// app ring accumulates per-ring overflow counts (backpressure), while the
// media-side Rx accounting stays a separate cause.
func TestDropCauseChannelOverflow(t *testing.T) {
	cfg := DefaultConfig()
	cfg.NumRings = 4 // Rx, Tx, free + one app ring nobody drains
	cfg.RingSlots = 8
	m, err := New(cfg, WithMedia(&openMedia{frame: 64}))
	if err != nil {
		t.Fatal(err)
	}
	m.GrowRing(cg.RingFree, 64)
	for i := 0; i < 32; i++ {
		m.Rings[cg.RingFree].Put(uint32(i), 64<<16|128)
	}
	m.LoadProgram(0, deadendProg())
	if err := m.Run(500_000); err != nil {
		t.Fatal(err)
	}
	st := m.Snapshot()
	if len(st.RingOverflow) != 4 {
		t.Fatalf("RingOverflow has %d entries, want 4", len(st.RingOverflow))
	}
	if st.RingOverflow[cg.RingApp0] == 0 {
		t.Error("full app ring recorded no overflow attempts")
	}
	if st.ChanOverflows() < st.RingOverflow[cg.RingApp0] {
		t.Error("ChanOverflows does not cover the app ring")
	}
	if st.RxDropped == 0 {
		t.Error("saturated pipeline should also drop at Rx")
	}
}

// deadendProg forwards Rx descriptors into an app ring nobody drains,
// retrying failed puts as compiled channel operations do.
func deadendProg() *cg.Program {
	return &cg.Program{Name: "deadend", Code: []*cg.Instr{
		{Op: cg.IRingGet, Ring: cg.RingRx, Dst: 0, Dst2: 16, Class: cg.ClassPacketRing},
		{Op: cg.IBccImm, Cond: cg.CNe, SrcA: 0, Imm: cg.InvalidPktID, Target: 4},
		{Op: cg.ICtxArb},
		{Op: cg.IBr, Target: 0},
		{Op: cg.IRingPut, Ring: cg.RingApp0, SrcA: 0, SrcB: 16, Dst: 1, Class: cg.ClassPacketRing},
		{Op: cg.IBccImm, Cond: cg.CNe, SrcA: 1, Imm: 0, Target: 0},
		{Op: cg.ICtxArb},
		{Op: cg.IBr, Target: 4},
	}}
}

// TestDropCausesSimultaneous: when the pipeline stalls behind a dead-end
// channel, both causes fire in the same run — Rx-ring saturation losses
// AND channel-ring overflow backpressure — and stay separately attributed:
// only Rx losses enter the drop rate, overflow attempts are not losses.
func TestDropCausesSimultaneous(t *testing.T) {
	cfg := DefaultConfig()
	cfg.NumRings = 4
	cfg.RingSlots = 8
	m, err := New(cfg, WithMedia(&openMedia{frame: 64}))
	if err != nil {
		t.Fatal(err)
	}
	m.GrowRing(cg.RingFree, 64)
	for i := 0; i < 32; i++ {
		m.Rings[cg.RingFree].Put(uint32(i), 64<<16|128)
	}
	m.LoadProgram(0, deadendProg())
	if err := m.Run(500_000); err != nil {
		t.Fatal(err)
	}
	st := m.Snapshot()
	if st.RxDropped == 0 || st.ChanOverflows() == 0 {
		t.Fatalf("want both causes active: rx-drops %d, chan-overflows %d",
			st.RxDropped, st.ChanOverflows())
	}
	// The causes are disjoint accounts: the drop rate is Rx losses over
	// offered packets, unchanged by however many overflow retries happened.
	want := float64(st.RxDropped) / float64(st.RxPackets+st.RxDropped)
	if got := st.DropRate(); got != want {
		t.Errorf("drop rate %v mixes causes, want rx-only %v", got, want)
	}
	if st.RingOverflow[cg.RingRx] != 0 {
		t.Errorf("media-side Rx saturation leaked into ME ring-overflow counts: %v",
			st.RingOverflow)
	}
}

// TestPacketConservationRandomized sweeps randomized open-loop workloads
// (frame size, ring capacity, port rate, duration) and checks the
// population identity on each: every offered packet is accounted exactly
// once as dropped at Rx, transmitted, freed, or still in flight —
// offered = rxDropped + tx + freed + inFlight, with no start-of-run
// population because machines begin empty.
func TestPacketConservationRandomized(t *testing.T) {
	rng := uint64(1)
	next := func(n int) int { // xorshift64*, avoids seeding-by-time
		rng ^= rng << 13
		rng ^= rng >> 7
		rng ^= rng << 17
		return int((rng * 0x2545f4914f6cdd1d) >> 33 % uint64(n))
	}
	frames := []int{64, 128, 594, 1518}
	for trial := 0; trial < 12; trial++ {
		cfg := DefaultConfig()
		cfg.NumRings = 4 // Rx, Tx, free + a dead-end app ring
		cfg.RingSlots = []int{8, 16, 64}[next(3)]
		cfg.PortGbps = []float64{0.5, 2.5, 10}[next(3)]
		frame := frames[next(len(frames))]
		cycles := int64(100_000 + 50_000*next(5))
		m, err := New(cfg, WithMedia(&openMedia{frame: frame}))
		if err != nil {
			t.Fatal(err)
		}
		m.GrowRing(cg.RingFree, 128)
		for i := 0; i < 100; i++ {
			m.Rings[cg.RingFree].Put(uint32(i), uint32(frame)<<16|128)
		}
		// Mix of fates: ME0 forwards to Tx, ME1 pushes into a dead-end ring
		// when present (channel backpressure in the balance).
		m.LoadProgram(0, loopProg())
		if cfg.RingSlots < 64 {
			m.LoadProgram(1, deadendProg())
		}
		if err := m.Run(cycles); err != nil {
			t.Fatal(err)
		}
		st := m.Snapshot()
		offered := st.RxPackets + st.RxDropped
		accounted := st.RxDropped + st.TxPackets + st.FreedPackets +
			uint64(m.Observer().InFlight())
		if offered == 0 {
			t.Fatalf("trial %d: no packets offered", trial)
		}
		if offered != accounted {
			t.Errorf("trial %d (frame %d, slots %d, %.1fG, %d cycles): offered %d != dropped %d + tx %d + freed %d + inflight %d",
				trial, frame, cfg.RingSlots, cfg.PortGbps, cycles,
				offered, st.RxDropped, st.TxPackets, st.FreedPackets,
				m.Observer().InFlight())
		}
	}
}
