package ixp

import (
	"strings"
	"testing"

	"shangrila/internal/cg"
)

// TestPredecodeFusion checks the superinstruction table: each dominant
// pair fuses, the tail keeps its standalone decode, and fusion never
// crosses a block leader.
func TestPredecodeFusion(t *testing.T) {
	p := &cg.Program{Name: "fusion", Code: []*cg.Instr{
		/* 0 */ {Op: cg.IALUImm, ALU: cg.AAdd, Dst: 0, SrcA: 0, Imm: 1},
		/* 1 */ {Op: cg.IALUImm, ALU: cg.AAdd, Dst: 1, SrcA: 1, Imm: 2},
		/* 2 */ {Op: cg.IImmed, Dst: 2, Imm: 7},
		/* 3 */ {Op: cg.IALU, ALU: cg.AXor, Dst: 3, SrcA: 2, SrcB: 0},
		/* 4 */ {Op: cg.IImmed, Dst: 4, Imm: 9},
		/* 5 */ {Op: cg.IBcc, Cond: cg.CEq, SrcA: 4, SrcB: 0, Target: 7},
		/* 6 */ {Op: cg.INop},
		/* 7 */ {Op: cg.IImmed, Dst: 5, Imm: 1}, // leader (branch target):
		/* 8 */ {Op: cg.IALUImm, ALU: cg.AAdd, Dst: 5, SrcA: 5, Imm: 1},
		/* 9 */ {Op: cg.IHalt},
	}}
	d := predecode(p)
	wantKinds := map[int]dKind{
		0: dFusedALUImmALUImm,
		1: dALUImm, // tail keeps standalone decode
		2: dFusedImmedALU,
		3: dALU,
		4: dFusedImmedBcc,
		5: dBcc,
		7: dFusedImmedALUImm, // leader may head a fusion, just not tail one
		8: dALUImm,
		9: dHalt,
	}
	for i, want := range wantKinds {
		if got := d.code[i].kind; got != want {
			t.Errorf("slot %d kind = %v, want %v", i, got, want)
		}
	}
	// Slot 6 is the fall-through of the branch at 5 and a block leader: the
	// nop at 6 and the immed at 7 must not have fused across it... and more
	// to the point, slot 4's fusion with the branch must not extend past
	// the terminator.
	if d.code[6].kind != dNop {
		t.Errorf("slot 6 kind = %v, want dNop", d.code[6].kind)
	}
}

// TestPredecodeRuns checks the straight-line run annotation that the
// block engine's tight loop consumes: fused slots weigh two instructions
// and terminators stay zero.
func TestPredecodeRuns(t *testing.T) {
	p := &cg.Program{Name: "runs", Code: []*cg.Instr{
		/* 0 */ {Op: cg.IImmed, Dst: 0, Imm: 1},
		/* 1 */ {Op: cg.IALUImm, ALU: cg.AAdd, Dst: 0, SrcA: 0, Imm: 1}, // fuses with 0
		/* 2 */ {Op: cg.INop},
		/* 3 */ {Op: cg.ICtxArb},
		/* 4 */ {Op: cg.IHalt},
	}}
	d := predecode(p)
	// Slot 1 is a fused tail, but entered directly it still heads its own
	// 2-instruction run (itself plus the nop).
	for i, want := range []int32{3, 2, 1, 0, 0} {
		if got := d.code[i].run; got != want {
			t.Errorf("slot %d run = %d, want %d", i, got, want)
		}
	}
}

// runProg executes prog on one thread of a bare machine until it halts
// and returns that thread.
func runProg(t *testing.T, prog *cg.Program) *Thread {
	t.Helper()
	cfg := DefaultConfig()
	cfg.SampleInterval = 0
	cfg.ThreadsPerME = 1
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	m.LoadProgram(0, prog)
	if err := m.Run(10_000); err != nil {
		t.Fatal(err)
	}
	return m.MEs[0].Thread(0)
}

// TestPredecodeZeroReg checks absent operands read the wired zero: an
// IALU with SrcB = NoPReg behaves as "op a, 0".
func TestPredecodeZeroReg(t *testing.T) {
	th := runProg(t, &cg.Program{Name: "zr", Code: []*cg.Instr{
		{Op: cg.IImmed, Dst: 1, Imm: 41},
		{Op: cg.IALU, ALU: cg.AAdd, Dst: 2, SrcA: 1, SrcB: cg.NoPReg},
		{Op: cg.IHalt},
	}})
	if got := th.Reg(2); got != 41 {
		t.Errorf("add r1, zero = %d, want 41", got)
	}
}

// TestPredecodeFusedTailEntry enters a thread directly at the tail slot
// of a fused pair (via SetPC) and checks it executes standalone — the
// guarantee that lets fusion never change observable behavior.
func TestPredecodeFusedTailEntry(t *testing.T) {
	prog := &cg.Program{Name: "tail-entry", Code: []*cg.Instr{
		{Op: cg.IImmed, Dst: 0, Imm: 100},                       // fuses with 1
		{Op: cg.IALUImm, ALU: cg.AAdd, Dst: 1, SrcA: 0, Imm: 5}, // fused tail
		{Op: cg.IHalt},
	}}
	cfg := DefaultConfig()
	cfg.SampleInterval = 0
	cfg.ThreadsPerME = 1
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	m.LoadProgram(0, prog)
	th := m.MEs[0].Thread(0)
	th.SetReg(0, 7)
	th.SetPC(1) // skip the immed head, land on the fused tail
	if err := m.Run(1_000); err != nil {
		t.Fatal(err)
	}
	if got := th.Reg(1); got != 12 {
		t.Errorf("tail-entry r1 = %d, want 12 (7+5, head not executed)", got)
	}
	if got := th.Reg(0); got != 7 {
		t.Errorf("tail-entry r0 = %d, want 7 (head immed must not run)", got)
	}
}

// TestPredecodeBadReg checks invalid operands machine-check only when the
// bad instruction actually executes, like the reference interpreter.
func TestPredecodeBadReg(t *testing.T) {
	bad := &cg.Instr{Op: cg.IALU, ALU: cg.AAdd, Dst: cg.PReg(cg.NumRegs + 3), SrcA: 0, SrcB: 0}
	cfg := DefaultConfig()
	cfg.SampleInterval = 0
	cfg.ThreadsPerME = 1

	// Unreached: halts before the bad slot, no error.
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	m.LoadProgram(0, &cg.Program{Name: "bad-unreached", Code: []*cg.Instr{
		{Op: cg.IHalt}, bad,
	}})
	if err := m.Run(1_000); err != nil {
		t.Fatalf("unreached bad instruction faulted: %v", err)
	}

	// Executed: machine-checks with the original opcode in the message.
	m2, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	m2.LoadProgram(0, &cg.Program{Name: "bad-hit", Code: []*cg.Instr{
		bad, {Op: cg.IHalt},
	}})
	err = m2.Run(1_000)
	if err == nil || !strings.Contains(err.Error(), "bad opcode") {
		t.Fatalf("executed bad instruction: err = %v, want bad-opcode fault", err)
	}
}
