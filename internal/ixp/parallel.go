package ixp

import (
	"errors"
	"sync"
)

// The parallel sharded engine.
//
// MEs interact with each other and with the media engines only through
// shared memory, scratch rings and the memory controllers — and every
// such interaction is the *final* act of a thread activation, which then
// blocks until the controller completes it. Completion takes at least
// lookahead = min(latency + svcBase + svcWord) over the three
// controllers, so inside a conservative window [T, T+lookahead) the
// ME-local work of different MEs is independent: nothing an ME does in
// the window can alter another ME's instruction stream before the window
// ends.
//
// The engine exploits exactly that structure, in two phases per epoch:
//
//   - Shard phase (concurrent). MEs are partitioned across worker
//     goroutines. Each shard drains its MEs' private event queues over
//     the window, executing all ME-local work (registers, local memory,
//     CAM, scheduler state) immediately and *deferring* every
//     shared-state terminal operation — the blocking memory access or
//     ring op that ends the activation — into a per-ME log. The shard
//     phase touches no shared machine state: no stats, no tracer, no
//     memory bytes outside the ME, no controllers, no event sequencing.
//
//   - Replay phase (serial, at the barrier). The per-ME logs and the
//     global events (media ticks, XScale, callbacks, telemetry samples)
//     merge in the serial engine's exact (time, seq) order; each step
//     applies its deferred shared-state effects — byte movement,
//     controller occupancy, ring mutations, statistics, tracer events —
//     and assigns the serial engine's sequence numbers to the events the
//     step would have scheduled. Shared state therefore evolves through
//     the identical sequence of mutations as under EngineSerial, which
//     is what makes the engines bit-identical at any shard count.
//
// Event ordering across the phases relies on one invariant: during a
// window, new events for an ME are created only by that ME's own
// processing (wakeup chains), and global events are created only by
// global processing. Intra-window creations are ordered by a per-ME
// creation counter until the replay stamps their true sequence numbers;
// a creation's stamping always precedes its processing in the merge, so
// the merge itself compares plain (time, seq) keys.

// meEvent is one pending ME-local event (activation or thread wakeup) in
// an ME's private queue. Events created before the current epoch carry
// their true serial sequence number (stamped); events created during the
// epoch are ordered by the ME-local creation counter until the replay
// stamps them. Both orders agree — a ME's intra-epoch creations receive
// sequence numbers in creation order — so stamping never reorders a
// queue.
type meEvent struct {
	time    int64
	seq     int64 // true serial sequence number once stamped
	local   int64 // ME-local creation counter while unstamped
	thread  int32
	kind    evKind // evActivate or evReady
	stamped bool
}

// meEventBefore is the per-ME queue order: time, then pre-epoch events
// (whose serial seqs all precede any intra-epoch seq) before intra-epoch
// ones, then seq or creation order within each group.
func meEventBefore(a, b *meEvent) bool {
	if a.time != b.time {
		return a.time < b.time
	}
	if a.stamped != b.stamped {
		return a.stamped
	}
	if a.stamped {
		return a.seq < b.seq
	}
	return a.local < b.local
}

// meQueue is a binary min-heap of *meEvent. Stamping mutates keys in
// place, but the before/after orders agree (see meEvent), so the heap
// invariant survives.
type meQueue struct {
	ev []*meEvent
}

func (q *meQueue) push(e *meEvent) {
	q.ev = append(q.ev, e)
	i := len(q.ev) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !meEventBefore(e, q.ev[p]) {
			break
		}
		q.ev[i] = q.ev[p]
		i = p
	}
	q.ev[i] = e
}

func (q *meQueue) peek() *meEvent {
	if len(q.ev) == 0 {
		return nil
	}
	return q.ev[0]
}

func (q *meQueue) pop() *meEvent {
	ev := q.ev
	top := ev[0]
	n := len(ev) - 1
	e := ev[n]
	ev[n] = nil
	q.ev = ev[:n]
	if n == 0 {
		return top
	}
	i := 0
	for {
		c := 2*i + 1
		if c >= n {
			break
		}
		if c+1 < n && meEventBefore(ev[c+1], ev[c]) {
			c++
		}
		if !meEventBefore(ev[c], e) {
			break
		}
		ev[i] = ev[c]
		i = c
	}
	ev[i] = e
	return top
}

// Deferred terminal-operation kinds of a logged activation.
const (
	termNone  = uint8(iota) // ctx yield, halt, or budget exhaustion
	termMem                 // blocking scratch/SRAM/DRAM access: replay runs execMem
	termRing                // ring get/put: replay runs ringGet/ringPut
	termFault               // machine check: replay sets the error and stops the run
)

// logEntry is one processed ME event, recorded in processing order. The
// replay applies its shared-state effects in merge order: the deferred
// terminal op, the tracer's ThreadRun, the statistics deltas, and the
// sequence stamping of the events the step created.
type logEntry struct {
	ev       *meEvent // the processed event; supplies the merge key
	me       int32
	thread   int32 // activation's chosen thread, or the readied thread
	isReady  bool  // evReady entry: stamps its created activation only
	cycles   int64
	instrs   uint64
	reason   YieldReason
	term     uint8
	in       *dInstr  // terminal instruction (termMem/termRing)
	cyclesAt int64    // cyclesSoFar when the terminal op issued
	faultMsg string   // termFault: the machine-check error text
	activate *meEvent // wakeup-chain activation this step created (or nil)
}

type accArray [numMemLevels * numAccessClasses]uint64

// meShard is the per-ME slice of engine state: the private event queue,
// the current epoch's log, the replay cursor, the creation counter and
// the event free list. The ME's owning worker touches it during the
// shard phase; the main goroutine touches it everywhere else — the
// epoch barrier separates the two.
type meShard struct {
	q       meQueue
	log     []logEntry
	pos     int
	nextLoc int64
	free    []*meEvent
}

func (ms *meShard) alloc() *meEvent {
	if n := len(ms.free); n > 0 {
		e := ms.free[n-1]
		ms.free = ms.free[:n-1]
		return e
	}
	return &meEvent{}
}

// create allocates an intra-epoch event, orders it by the ME-local
// creation counter and queues it. The replay stamps its true sequence
// number when the creating step replays.
func (ms *meShard) create(t int64, kind evKind, thread int32) *meEvent {
	e := ms.alloc()
	*e = meEvent{time: t, local: ms.nextLoc, thread: thread, kind: kind}
	ms.nextLoc++
	ms.q.push(e)
	return e
}

// parallelEngine is the sharded event core. See the package comment
// above for the two-phase protocol.
type parallelEngine struct {
	m        *Machine
	shards   int
	compiled bool  // EngineCompiled{Shards>0}: shard phases run staged closures
	w        int64 // conservative lookahead window width

	global heap4     // non-ME events (ticks, callbacks, samples), true seqs
	mes    []meShard // per-ME state

	// shardAccs are per-shard access-counter staging arrays: the shard
	// phase bumps local-memory access counters here (the only statistic
	// ME-local work produces) and run folds them into Machine.acc.
	shardAccs []accArray

	work    []chan int64 // per-worker epoch window signal
	wg      sync.WaitGroup
	started bool
}

func newParallelEngine(m *Machine, shards int) *parallelEngine {
	return &parallelEngine{
		m:      m,
		shards: shards,
		w:      m.Cfg.lookahead(),
		mes:    make([]meShard, m.Cfg.NumMEs),
	}
}

// push routes an event scheduled through Machine.schedule. Every caller
// runs in a serial context (kickoff, replay, or between Run calls), so
// the event carries its true sequence number.
func (p *parallelEngine) push(e event) {
	switch e.kind {
	case evActivate, evReady:
		ms := &p.mes[e.me]
		me := ms.alloc()
		*me = meEvent{time: e.time, seq: e.seq, thread: e.thread, kind: e.kind, stamped: true}
		ms.q.push(me)
	default:
		p.global.push(e)
	}
}

func (p *parallelEngine) pending() int {
	n := p.global.len()
	for i := range p.mes {
		n += len(p.mes[i].q.ev)
	}
	return n
}

// nextTime returns the earliest pending event time across every queue.
func (p *parallelEngine) nextTime() (int64, bool) {
	var t int64
	found := false
	if p.global.len() > 0 {
		t = p.global.ev[0].time
		found = true
	}
	for i := range p.mes {
		if h := p.mes[i].q.peek(); h != nil && (!found || h.time < t) {
			t = h.time
			found = true
		}
	}
	return t, found
}

// run advances the simulation in conservative epochs until the cycle
// budget elapses or an error occurs, with semantics identical to the
// serial engine: the same events process in the same (time, seq) order,
// the deadline leaves future events queued, and draining the queues
// leaves the clock at the last processed event.
func (p *parallelEngine) run(m *Machine, cycles int64) error {
	deadline := m.now + cycles
	m.kickoff()
	p.startWorkers()
	defer p.stopWorkers()
	for m.err == nil {
		t, ok := p.nextTime()
		if !ok {
			break
		}
		if t > deadline {
			m.now = deadline
			break
		}
		end := t + p.w
		if end > deadline+1 {
			end = deadline + 1
		}
		p.runEpoch(m, end)
	}
	p.foldAcc(m)
	m.stats.Cycles = m.now - m.statsBase
	return m.err
}

// runEpoch executes one conservative window: concurrent shard phase,
// then the serial replay at the barrier.
func (p *parallelEngine) runEpoch(m *Machine, end int64) {
	for i := range p.mes {
		ms := &p.mes[i]
		ms.log = ms.log[:0]
		ms.pos = 0
		ms.nextLoc = 0
	}
	// Dispatch only the shards whose MEs have events inside the window;
	// a lone active shard runs inline to skip the barrier round-trip.
	var active []int
	for s := 0; s < p.shards; s++ {
		for i := s; i < len(p.mes); i += p.shards {
			if h := p.mes[i].q.peek(); h != nil && h.time < end {
				active = append(active, s)
				break
			}
		}
	}
	switch {
	case len(active) == 0:
		// Global-only window.
	case len(active) == 1 || len(p.work) == 0:
		for _, s := range active {
			p.shardPhase(s, end)
		}
	default:
		p.wg.Add(len(active))
		for _, s := range active {
			p.work[s] <- end
		}
		p.wg.Wait()
	}
	p.replay(m, end)
}

// shardPhase drains one shard's ME queues over the window [queue heads,
// end), executing ME-local work and logging deferred effects. It runs
// concurrently with other shards and must touch only this shard's MEs
// and per-ME engine state.
func (p *parallelEngine) shardPhase(s int, end int64) {
	m := p.m
	acc := &p.shardAccs[s]
	for i := s; i < len(p.mes); i += p.shards {
		ms := &p.mes[i]
		for {
			h := ms.q.peek()
			if h == nil || h.time >= end {
				break
			}
			ev := ms.q.pop()
			var fault bool
			if ev.kind == evActivate {
				m.MEs[i].scheduled = false
				fault = p.shardActivate(acc, ms, i, ev)
			} else {
				p.shardReady(ms, i, ev)
			}
			if fault {
				// The machine check stops the run at this entry's replay
				// position; later ME-local work would be discarded anyway.
				return
			}
		}
	}
}

// replay merges the epoch's per-ME logs with the global events in
// (time, seq) order and applies every shared-state effect serially.
func (p *parallelEngine) replay(m *Machine, end int64) {
	for m.err == nil {
		var ent *logEntry
		var best *meShard
		for i := range p.mes {
			ms := &p.mes[i]
			if ms.pos >= len(ms.log) {
				continue
			}
			e := &ms.log[ms.pos]
			if ent == nil || e.ev.time < ent.ev.time ||
				(e.ev.time == ent.ev.time && e.ev.seq < ent.ev.seq) {
				ent, best = e, ms
			}
		}
		g := (*event)(nil)
		if p.global.len() > 0 && p.global.ev[0].time < end {
			g = &p.global.ev[0]
		}
		switch {
		case ent == nil && g == nil:
			return
		case ent == nil || (g != nil && (g.time < ent.ev.time ||
			(g.time == ent.ev.time && g.seq < ent.ev.seq))):
			ev := p.global.pop()
			if ev.time > m.now {
				m.now = ev.time
			}
			switch ev.kind {
			case evRxTick:
				m.rxTick()
			case evTxTick:
				m.txTick()
			case evXScale:
				m.xscaleTick()
			case evCallback:
				m.takeCB(ev.cb)()
			case evSample:
				m.sampleTick()
			}
		default:
			best.pos++
			if ent.ev.time > m.now {
				m.now = ent.ev.time
			}
			p.replayEntry(m, ent)
			best.free = append(best.free, ent.ev)
		}
	}
}

// replayEntry applies one logged ME step: the deferred terminal
// operation, tracing, statistics and sequence stamping — in exactly the
// serial runME/readyThread order.
func (p *parallelEngine) replayEntry(m *Machine, ent *logEntry) {
	if ent.isReady {
		if ent.activate != nil {
			p.stamp(m, ent.activate)
		}
		return
	}
	me, ti := int(ent.me), int(ent.thread)
	mx := m.MEs[me]
	th := mx.threads[ti]
	switch ent.term {
	case termMem:
		// The shard pre-checked the address range, so this cannot fail;
		// it moves the bytes, accounts the access, occupies the
		// controller and emits the MemAccess trace.
		_, done := m.execMem(mx, th, ti, ent.in, ent.cyclesAt)
		m.schedule(done, evReady, me, ti, nil)
	case termRing:
		var done int64
		if ent.in.kind == dRingGet {
			done = m.ringGet(mx, th, ti, ent.in, ent.cyclesAt)
		} else {
			done = m.ringPut(mx, th, ti, ent.in, ent.cyclesAt)
		}
		m.schedule(done, evReady, me, ti, nil)
	case termFault:
		m.stats.MEInstrs[me] += ent.instrs
		if m.err == nil {
			m.err = errors.New(ent.faultMsg)
		}
		if m.tracer != nil {
			m.tracer.ThreadRun(ent.ev.time, me, ti, ent.cycles, YieldFault)
		}
		return
	}
	if m.tracer != nil {
		m.tracer.ThreadRun(ent.ev.time, me, ti, ent.cycles, ent.reason)
	}
	m.stats.MEInstrs[me] += ent.instrs
	m.stats.MEBusy[me] += ent.cycles
	if ent.activate != nil {
		p.stamp(m, ent.activate)
	}
}

// stamp assigns the next serial sequence number to an event created
// during the shard phase — the number Machine.schedule would have handed
// it under the serial engine. The event already sits in its ME's queue
// (or has already been processed and merely keys a later log entry);
// stamping re-keys it without reordering (see meEvent).
func (p *parallelEngine) stamp(m *Machine, ev *meEvent) {
	m.seq++
	ev.seq = m.seq
	ev.stamped = true
}

// foldAcc merges the per-shard access-counter arrays into the machine's,
// so Snapshot (and ResetStats) observe one coherent array between runs.
func (p *parallelEngine) foldAcc(m *Machine) {
	for s := range p.shardAccs {
		for i, v := range p.shardAccs[s] {
			if v != 0 {
				m.acc[i] += v
				p.shardAccs[s][i] = 0
			}
		}
	}
}

// startWorkers launches the per-shard worker goroutines for one Run
// call. A single-shard engine runs every phase inline instead.
func (p *parallelEngine) startWorkers() {
	if p.shardAccs == nil {
		p.shardAccs = make([]accArray, p.shards)
	}
	if p.shards <= 1 || p.started {
		return
	}
	p.started = true
	p.work = make([]chan int64, p.shards)
	for s := 0; s < p.shards; s++ {
		c := make(chan int64, 1)
		p.work[s] = c
		go func(s int, c chan int64) {
			for end := range c {
				p.shardPhase(s, end)
				p.wg.Done()
			}
		}(s, c)
	}
}

// stopWorkers tears the workers down at the end of the Run call, so
// machines never leak goroutines across measurements.
func (p *parallelEngine) stopWorkers() {
	if !p.started {
		return
	}
	p.started = false
	for _, c := range p.work {
		close(c)
	}
	p.work = nil
}
