// Package testutil provides shared helpers for compiler tests: building IR
// from Baker source and differentially testing optimization passes by
// executing programs before and after a transform and comparing every
// transmitted packet.
package testutil

import (
	"bytes"
	"fmt"
	"testing"

	"shangrila/internal/baker/parser"
	"shangrila/internal/baker/types"
	"shangrila/internal/ir"
	"shangrila/internal/lower"
	"shangrila/internal/packet"
	"shangrila/internal/profiler"
)

// BuildIR parses, checks and lowers src, failing the test on any error.
func BuildIR(t testing.TB, src string) *ir.Program {
	t.Helper()
	prog, err := parser.Parse("test.baker", src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	tp, err := types.Check(prog)
	if err != nil {
		t.Fatalf("check: %v", err)
	}
	p, err := lower.Lower(tp)
	if err != nil {
		t.Fatalf("lower: %v", err)
	}
	return p
}

// Outcome captures the externally visible behaviour of one program run:
// transmitted packet bytes (in order, with exit channel and metadata) and
// final drop count.
type Outcome struct {
	Tx      []TxRecord
	Dropped uint64
}

// TxRecord is one transmitted packet.
type TxRecord struct {
	Chan  string
	Bytes []byte
	Meta  []byte
	Head  int
}

// Execute runs prog over the packets produced by gen (one fresh trace per
// call so mutation cannot leak between runs) and returns the outcome.
// Control functions in controls are invoked before packets flow.
func Execute(t testing.TB, prog *ir.Program, gen func(tp *types.Program) []*packet.Packet,
	controls [][]any) Outcome {
	t.Helper()
	s, err := profiler.NewSession(prog)
	if err != nil {
		t.Fatalf("session: %v", err)
	}
	for _, c := range controls {
		name := c[0].(string)
		var args []uint32
		for _, a := range c[1:] {
			args = append(args, toU32(a))
		}
		if err := s.Control(name, args...); err != nil {
			t.Fatalf("control %s: %v", name, err)
		}
	}
	for _, p := range gen(prog.Types) {
		if err := s.Inject(p); err != nil {
			t.Fatalf("inject: %v", err)
		}
	}
	out := Outcome{Dropped: s.Stats.Dropped}
	for _, o := range s.Out {
		out.Tx = append(out.Tx, TxRecord{
			Chan:  o.Chan.Name,
			Bytes: append([]byte(nil), o.P.Bytes()...),
			Meta:  append([]byte(nil), o.P.Meta...),
			Head:  o.Head,
		})
	}
	return out
}

func toU32(a any) uint32 {
	switch v := a.(type) {
	case int:
		return uint32(v)
	case uint32:
		return v
	case uint64:
		return uint32(v)
	}
	panic(fmt.Sprintf("testutil: bad control arg %T", a))
}

// SameOutcome fails the test if two outcomes differ, printing the first
// divergence.
func SameOutcome(t testing.TB, want, got Outcome, label string) {
	t.Helper()
	if want.Dropped != got.Dropped {
		t.Errorf("%s: dropped %d, want %d", label, got.Dropped, want.Dropped)
	}
	if len(want.Tx) != len(got.Tx) {
		t.Fatalf("%s: transmitted %d packets, want %d", label, len(got.Tx), len(want.Tx))
	}
	for i := range want.Tx {
		w, g := want.Tx[i], got.Tx[i]
		if w.Chan != g.Chan {
			t.Errorf("%s: packet %d exit channel %s, want %s", label, i, g.Chan, w.Chan)
		}
		if !bytes.Equal(w.Bytes, g.Bytes) {
			t.Errorf("%s: packet %d bytes differ\n got %x\nwant %x", label, i, g.Bytes, w.Bytes)
		}
		if !bytes.Equal(w.Meta, g.Meta) {
			t.Errorf("%s: packet %d metadata differ: got %x want %x", label, i, g.Meta, w.Meta)
		}
		if w.Head != g.Head {
			t.Errorf("%s: packet %d head %d, want %d", label, i, g.Head, w.Head)
		}
	}
}

// DiffTest builds the program twice from src, applies transform to one
// copy, executes both on identical traces and requires identical outcomes.
// It returns the transformed program for further inspection.
func DiffTest(t testing.TB, src string, gen func(tp *types.Program) []*packet.Packet,
	controls [][]any, transform func(p *ir.Program)) *ir.Program {
	t.Helper()
	ref := BuildIR(t, src)
	opt := BuildIR(t, src)
	transform(opt)
	want := Execute(t, ref, gen, controls)
	got := Execute(t, opt, gen, controls)
	SameOutcome(t, want, got, "transformed-vs-reference")
	return opt
}
