// Package metrics provides the lightweight instrumentation substrate for
// the evaluation engine: named counters, gauges, and windowed time-series
// sampled on simulator cycles. The IXP model records per-ME utilization,
// per-controller saturation and per-ring occupancy through a Registry;
// the harness exports the collected data as JSON or CSV alongside the
// paper's tables and figures.
//
// Instruments are goroutine-safe: the sweep runner measures many machine
// instances concurrently, and each machine owns a private Registry, but
// nothing prevents a shared registry (e.g. a fleet-wide one) from being
// updated from several goroutines.
package metrics

import (
	"sort"
	"sync"
	"sync/atomic"
)

// Sample is one point of a time-series: simulator cycle and value.
type Sample struct {
	T int64   `json:"t"`
	V float64 `json:"v"`
}

// Counter is a monotonically increasing integer metric.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by d.
func (c *Counter) Add(d int64) { c.v.Add(d) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a point-in-time float metric (latest value wins).
type Gauge struct {
	mu sync.Mutex
	v  float64
}

// Set records the current value.
func (g *Gauge) Set(v float64) {
	g.mu.Lock()
	g.v = v
	g.mu.Unlock()
}

// Value returns the last recorded value.
func (g *Gauge) Value() float64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.v
}

// Series is a windowed time-series: appending beyond the window drops the
// oldest samples. A window of 0 keeps every sample.
type Series struct {
	mu      sync.Mutex
	window  int
	samples []Sample
}

// Append records v at cycle t, evicting the oldest sample when the window
// is full.
func (s *Series) Append(t int64, v float64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.window > 0 && len(s.samples) == s.window {
		copy(s.samples, s.samples[1:])
		s.samples = s.samples[:len(s.samples)-1]
	}
	s.samples = append(s.samples, Sample{T: t, V: v})
}

// Samples returns a copy of the retained samples in append order.
func (s *Series) Samples() []Sample {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]Sample(nil), s.samples...)
}

// Len returns the number of retained samples.
func (s *Series) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.samples)
}

// Registry holds named instruments. Instruments are created on first use
// and identified by a typed Key (see keys.go); lookups are get-or-create.
type Registry struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	series     map[string]*Series
	histograms map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   map[string]*Counter{},
		gauges:     map[string]*Gauge{},
		series:     map[string]*Series{},
		histograms: map[string]*Histogram{},
	}
}

// Counter returns the named counter, creating it if needed.
func (r *Registry) Counter(name Key) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[string(name)]
	if !ok {
		c = &Counter{}
		r.counters[string(name)] = c
	}
	return c
}

// Gauge returns the named gauge, creating it if needed.
func (r *Registry) Gauge(name Key) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[string(name)]
	if !ok {
		g = &Gauge{}
		r.gauges[string(name)] = g
	}
	return g
}

// Series returns the named series, creating it with the given window if
// needed. The window of an existing series is not changed.
func (r *Registry) Series(name Key, window int) *Series {
	r.mu.Lock()
	defer r.mu.Unlock()
	s, ok := r.series[string(name)]
	if !ok {
		s = &Series{window: window}
		r.series[string(name)] = s
	}
	return s
}

// Snapshot is an immutable, export-ready copy of a registry's contents.
type Snapshot struct {
	Counters   map[string]int64             `json:"counters,omitempty"`
	Gauges     map[string]float64           `json:"gauges,omitempty"`
	Series     map[string][]Sample          `json:"series,omitempty"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
}

// Snapshot deep-copies the registry. The result is detached: later updates
// to the registry do not affect it.
func (r *Registry) Snapshot() Snapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	snap := Snapshot{}
	if len(r.counters) > 0 {
		snap.Counters = make(map[string]int64, len(r.counters))
		for n, c := range r.counters {
			snap.Counters[n] = c.Value()
		}
	}
	if len(r.gauges) > 0 {
		snap.Gauges = make(map[string]float64, len(r.gauges))
		for n, g := range r.gauges {
			snap.Gauges[n] = g.Value()
		}
	}
	if len(r.series) > 0 {
		snap.Series = make(map[string][]Sample, len(r.series))
		for n, s := range r.series {
			snap.Series[n] = s.Samples()
		}
	}
	if len(r.histograms) > 0 {
		snap.Histograms = make(map[string]HistogramSnapshot, len(r.histograms))
		for n, h := range r.histograms {
			snap.Histograms[n] = h.Snapshot()
		}
	}
	return snap
}

// SeriesNames returns the snapshot's series names in sorted order
// (deterministic iteration for exports and tests).
func (s Snapshot) SeriesNames() []string {
	names := make([]string, 0, len(s.Series))
	for n := range s.Series {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
