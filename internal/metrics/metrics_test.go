package metrics

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeSeries(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("tx")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Errorf("counter = %d, want 5", got)
	}
	if r.Counter("tx") != c {
		t.Error("Counter not get-or-create")
	}
	g := r.Gauge("occ")
	g.Set(3.5)
	g.Set(7.25)
	if got := g.Value(); got != 7.25 {
		t.Errorf("gauge = %v, want 7.25", got)
	}
	s := r.Series("util", 0)
	for i := int64(0); i < 4; i++ {
		s.Append(i*100, float64(i))
	}
	smp := s.Samples()
	if len(smp) != 4 || smp[3] != (Sample{T: 300, V: 3}) {
		t.Errorf("samples = %v", smp)
	}
}

func TestSeriesWindowEvictsOldest(t *testing.T) {
	s := &Series{window: 3}
	for i := int64(0); i < 10; i++ {
		s.Append(i, float64(i))
	}
	got := s.Samples()
	if len(got) != 3 {
		t.Fatalf("len = %d, want 3", len(got))
	}
	for i, want := range []int64{7, 8, 9} {
		if got[i].T != want {
			t.Errorf("sample %d at t=%d, want %d", i, got[i].T, want)
		}
	}
}

func TestSnapshotDetached(t *testing.T) {
	r := NewRegistry()
	r.Counter("n").Inc()
	r.Series("s", 0).Append(1, 1)
	snap := r.Snapshot()
	r.Counter("n").Add(100)
	r.Series("s", 0).Append(2, 2)
	if snap.Counters["n"] != 1 {
		t.Errorf("snapshot counter mutated: %d", snap.Counters["n"])
	}
	if len(snap.Series["s"]) != 1 {
		t.Errorf("snapshot series mutated: %v", snap.Series["s"])
	}
}

func TestJSONDeterministicAndRoundTrips(t *testing.T) {
	mk := func() Snapshot {
		r := NewRegistry()
		r.Counter("b").Add(2)
		r.Counter("a").Add(1)
		r.Gauge("g").Set(0.5)
		r.Series("z", 0).Append(10, 1.5)
		r.Series("y", 0).Append(20, 2.5)
		return r.Snapshot()
	}
	var b1, b2 bytes.Buffer
	if err := mk().WriteJSON(&b1); err != nil {
		t.Fatal(err)
	}
	if err := mk().WriteJSON(&b2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1.Bytes(), b2.Bytes()) {
		t.Error("JSON export not byte-identical for identical registries")
	}
	var back Snapshot
	if err := json.Unmarshal(b1.Bytes(), &back); err != nil {
		t.Fatal(err)
	}
	if back.Counters["a"] != 1 || back.Series["y"][0].V != 2.5 {
		t.Errorf("round trip lost data: %+v", back)
	}
}

func TestCSVExport(t *testing.T) {
	r := NewRegistry()
	r.Counter("tx").Add(3)
	r.Gauge("sat").Set(0.75)
	s := r.Series("me0.util", 0)
	s.Append(1000, 0.5)
	s.Append(2000, 0.625)
	var b bytes.Buffer
	if err := r.Snapshot().WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(b.String()), "\n")
	want := []string{
		"kind,name,cycle,value",
		"counter,tx,,3",
		"gauge,sat,,0.75",
		"series,me0.util,1000,0.5",
		"series,me0.util,2000,0.625",
	}
	if len(lines) != len(want) {
		t.Fatalf("lines = %v", lines)
	}
	for i := range want {
		if lines[i] != want[i] {
			t.Errorf("line %d = %q, want %q", i, lines[i], want[i])
		}
	}
}

func TestConcurrentUpdates(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				r.Counter("c").Inc()
				r.Gauge("g").Set(float64(i))
				r.Series("s", 64).Append(int64(i), float64(w))
			}
		}(w)
	}
	wg.Wait()
	if got := r.Counter("c").Value(); got != 8000 {
		t.Errorf("counter = %d, want 8000", got)
	}
	if n := r.Series("s", 64).Len(); n != 64 {
		t.Errorf("windowed series kept %d, want 64", n)
	}
}
