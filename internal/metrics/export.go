package metrics

import (
	"encoding/csv"
	"encoding/json"
	"io"
	"sort"
	"strconv"
)

// WriteJSON writes the snapshot as indented JSON. Map keys marshal in
// sorted order, so identical snapshots produce identical bytes.
func (s Snapshot) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// WriteCSV writes the snapshot as rows of kind,name,cycle,value. Counters
// and gauges use an empty cycle column; series emit one row per sample.
// Rows are sorted by (kind, name, cycle) so identical snapshots produce
// identical bytes.
func (s Snapshot) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"kind", "name", "cycle", "value"}); err != nil {
		return err
	}
	names := make([]string, 0, len(s.Counters))
	for n := range s.Counters {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		if err := cw.Write([]string{"counter", n, "", strconv.FormatInt(s.Counters[n], 10)}); err != nil {
			return err
		}
	}
	names = names[:0]
	for n := range s.Gauges {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		if err := cw.Write([]string{"gauge", n, "", formatFloat(s.Gauges[n])}); err != nil {
			return err
		}
	}
	names = names[:0]
	for n := range s.Histograms {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		h := s.Histograms[n]
		for _, col := range []struct {
			stat  string
			value string
		}{
			{"count", strconv.FormatUint(h.Count, 10)},
			{"p50", strconv.FormatInt(h.P50, 10)},
			{"p90", strconv.FormatInt(h.P90, 10)},
			{"p99", strconv.FormatInt(h.P99, 10)},
			{"max", strconv.FormatInt(h.Max, 10)},
			{"mean", formatFloat(h.Mean)},
		} {
			if err := cw.Write([]string{"histogram", n + "." + col.stat, "", col.value}); err != nil {
				return err
			}
		}
	}
	for _, n := range s.SeriesNames() {
		for _, smp := range s.Series[n] {
			if err := cw.Write([]string{"series", n,
				strconv.FormatInt(smp.T, 10), formatFloat(smp.V)}); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

func formatFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// MarshalIndent returns the snapshot's canonical JSON bytes.
func (s Snapshot) MarshalIndent() ([]byte, error) {
	return json.MarshalIndent(s, "", "  ")
}
