package metrics

import (
	"math/bits"
	"sync"
)

// Histogram is a log-bucketed value histogram for latency samples: values
// below histSubCount land in exact unit buckets, and every power-of-two
// octave above is split into histSubCount linear sub-buckets, bounding the
// relative quantile error at 1/histSubCount (~3%). Recording is O(1) and
// lock-cheap; the simulator records one sample per forwarded packet.
type Histogram struct {
	mu     sync.Mutex
	counts []uint64
	count  uint64
	sum    uint64
	max    int64
}

// histSubCount is the linear sub-bucket count per octave (a power of two).
const (
	histSubCount = 32
	histSubBits  = 5 // log2(histSubCount)
)

// NewHistogram returns an empty histogram.
func NewHistogram() *Histogram { return &Histogram{} }

// bucketIndex maps a non-negative value to its bucket.
func bucketIndex(v int64) int {
	if v < histSubCount {
		return int(v)
	}
	exp := bits.Len64(uint64(v)) - 1 // position of the most significant bit
	// Values in [2^exp, 2^(exp+1)) map to sub-buckets of width
	// 2^(exp-histSubBits); the block below histSubCount is the exact range.
	return (exp-histSubBits)*histSubCount + int(v>>(uint(exp)-histSubBits))
}

// bucketBounds returns the inclusive [lo, hi] value range of bucket idx.
func bucketBounds(idx int) (lo, hi int64) {
	if idx < 2*histSubCount {
		return int64(idx), int64(idx)
	}
	block := idx/histSubCount - 1 // 1-based octave above the exact range
	pos := idx % histSubCount
	width := int64(1) << uint(block)
	lo = (histSubCount + int64(pos)) << uint(block)
	return lo, lo + width - 1
}

// Record adds one sample. Negative values clamp to zero (latency samples
// are cycle differences and cannot be negative in a monotonic simulation).
func (h *Histogram) Record(v int64) {
	if v < 0 {
		v = 0
	}
	idx := bucketIndex(v)
	h.mu.Lock()
	if idx >= len(h.counts) {
		grown := make([]uint64, idx+1)
		copy(grown, h.counts)
		h.counts = grown
	}
	h.counts[idx]++
	h.count++
	h.sum += uint64(v)
	if v > h.max {
		h.max = v
	}
	h.mu.Unlock()
}

// Count returns the number of recorded samples.
func (h *Histogram) Count() uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.count
}

// Max returns the largest recorded sample (0 when empty).
func (h *Histogram) Max() int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.max
}

// Mean returns the arithmetic mean of the samples (0 when empty).
func (h *Histogram) Mean() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.count)
}

// Quantile returns the value at quantile q in [0, 1]: the upper bound of
// the first bucket whose cumulative count reaches ceil(q*count). Values
// below 2*histSubCount are exact; above, the estimate errs high by at most
// one sub-bucket width. Returns 0 when empty.
func (h *Histogram) Quantile(q float64) int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.quantileLocked(q)
}

func (h *Histogram) quantileLocked(q float64) int64 {
	if h.count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := uint64(q * float64(h.count))
	if float64(rank) < q*float64(h.count) {
		rank++ // ceil
	}
	if rank < 1 {
		rank = 1
	}
	var cum uint64
	for idx, c := range h.counts {
		cum += c
		if cum >= rank {
			_, hi := bucketBounds(idx)
			if hi > h.max {
				hi = h.max // the top bucket cannot exceed the observed max
			}
			return hi
		}
	}
	return h.max
}

// Merge folds src's samples into h (bucket counts, count, sum and max).
// Quantiles of the merged histogram are exactly those of recording both
// sample sets into one histogram — the cluster harness merges per-chip
// latency distributions this way. Merging a histogram into itself is a
// no-op.
func (h *Histogram) Merge(src *Histogram) {
	if src == nil || src == h {
		return
	}
	src.mu.Lock()
	counts := append([]uint64(nil), src.counts...)
	count, sum, max := src.count, src.sum, src.max
	src.mu.Unlock()
	h.mu.Lock()
	if len(counts) > len(h.counts) {
		grown := make([]uint64, len(counts))
		copy(grown, h.counts)
		h.counts = grown
	}
	for i, c := range counts {
		h.counts[i] += c
	}
	h.count += count
	h.sum += sum
	if max > h.max {
		h.max = max
	}
	h.mu.Unlock()
}

// Reset discards every sample (the simulator resets after warm-up).
func (h *Histogram) Reset() {
	h.mu.Lock()
	h.counts = h.counts[:0]
	h.count = 0
	h.sum = 0
	h.max = 0
	h.mu.Unlock()
}

// HistogramSnapshot is the immutable, export-ready summary of a histogram.
// Field order is fixed, so encoding/json output is canonical.
type HistogramSnapshot struct {
	Count uint64  `json:"count"`
	Sum   uint64  `json:"sum"`
	Max   int64   `json:"max"`
	P50   int64   `json:"p50"`
	P90   int64   `json:"p90"`
	P99   int64   `json:"p99"`
	Mean  float64 `json:"mean"`
}

// Snapshot summarizes the histogram. The result is detached from the
// histogram's later updates.
func (h *Histogram) Snapshot() HistogramSnapshot {
	h.mu.Lock()
	defer h.mu.Unlock()
	s := HistogramSnapshot{Count: h.count, Sum: h.sum, Max: h.max}
	if h.count > 0 {
		s.P50 = h.quantileLocked(0.50)
		s.P90 = h.quantileLocked(0.90)
		s.P99 = h.quantileLocked(0.99)
		s.Mean = float64(h.sum) / float64(h.count)
	}
	return s
}

// Histogram returns the named histogram, creating it if needed.
func (r *Registry) Histogram(name Key) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.histograms[string(name)]
	if !ok {
		h = NewHistogram()
		r.histograms[string(name)] = h
	}
	return h
}
