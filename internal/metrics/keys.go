package metrics

import "fmt"

// Key names an instrument. Registry lookups take a Key rather than a bare
// string so that ad-hoc fmt.Sprintf key construction fails to compile at
// the call site: well-known instruments get a typed constructor below, and
// one constructor per key family keeps the naming scheme in one place.
// Untyped string literals still convert implicitly, so fixed-name callers
// (`reg.Counter("tx")`) are unaffected.
type Key string

// String returns the key's wire name (the map key in Snapshot output).
func (k Key) String() string { return string(k) }

// MEUtil is microengine i's utilization time-series (busy fraction per
// sample interval).
func MEUtil(i int) Key { return Key(fmt.Sprintf("me%d.util", i)) }

// CtrlSat is a memory controller's saturation time-series (occupancy
// fraction per sample interval); level is the controller name
// (scratch/sram/dram).
func CtrlSat(level string) Key { return Key("ctrl." + level + ".sat") }

// CtrlQueue is a memory controller's queue-backlog time-series (cycles of
// already-committed service ahead of a new request).
func CtrlQueue(level string) Key { return Key("ctrl." + level + ".queue") }

// RingOcc is scratch ring i's occupancy time-series (entries at each
// sample instant).
func RingOcc(i int) Key { return Key(fmt.Sprintf("ring%d.occ", i)) }

// PassRuns counts executions of a named compiler pass.
func PassRuns(pass string) Key { return Key("compile.pass." + pass + ".runs") }

// PassNanos accumulates a named compiler pass's wall-clock nanoseconds.
func PassNanos(pass string) Key { return Key("compile.pass." + pass + ".nanos") }

// PassVerifyNanos accumulates the IR-verification nanoseconds charged to a
// named compiler pass.
func PassVerifyNanos(pass string) Key { return Key("compile.pass." + pass + ".verify_nanos") }

// PassSizeDelta gauges a named compiler pass's last instruction-count
// delta (after - before; negative means the pass shrank the program).
func PassSizeDelta(pass string) Key { return Key("compile.pass." + pass + ".size_delta") }

// PassSkips counts the times an incremental recompile reused a named
// pass's cached result instead of executing it.
func PassSkips(pass string) Key { return Key("compile.pass." + pass + ".skips") }

// Session-level incremental-compilation counters: total compiles executed
// by a driver.Session and how many of those reused at least one cached
// pass result.
const (
	SessionCompiles    = Key("compile.session.compiles")
	SessionIncremental = Key("compile.session.incremental")
)

// StallShareKey is the per-category stall-share gauge family exported from
// a stall breakdown (category as in ixp.Stall.StallShare, e.g.
// "mem_queue.dram").
func StallShareKey(category string) Key { return Key("stall.share." + category) }

// CounterNamed looks up a counter by a runtime-built string name.
//
// Deprecated: construct a Key (ideally via a typed constructor above) and
// call Counter; this shim exists for one release to ease migration.
func (r *Registry) CounterNamed(name string) *Counter { return r.Counter(Key(name)) }

// GaugeNamed looks up a gauge by a runtime-built string name.
//
// Deprecated: construct a Key and call Gauge.
func (r *Registry) GaugeNamed(name string) *Gauge { return r.Gauge(Key(name)) }

// SeriesNamed looks up a series by a runtime-built string name.
//
// Deprecated: construct a Key and call Series.
func (r *Registry) SeriesNamed(name string, window int) *Series { return r.Series(Key(name), window) }

// HistogramNamed looks up a histogram by a runtime-built string name.
//
// Deprecated: construct a Key and call Histogram.
func (r *Registry) HistogramNamed(name string) *Histogram { return r.Histogram(Key(name)) }
