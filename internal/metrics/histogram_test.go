package metrics

import (
	"encoding/json"
	"sync"
	"testing"
)

// TestHistogramExactSmallSamples pins the quantile rule on small exact
// inputs: every value below 2*histSubCount sits in a unit bucket, so the
// quantile is the exact order statistic at rank ceil(q*n).
func TestHistogramExactSmallSamples(t *testing.T) {
	h := NewHistogram()
	for _, v := range []int64{1, 2, 3, 4} {
		h.Record(v)
	}
	cases := []struct {
		q    float64
		want int64
	}{
		{0.0, 1},  // rank clamps to 1
		{0.25, 1}, // ceil(0.25*4) = 1
		{0.5, 2},  // ceil(0.5*4) = 2
		{0.51, 3}, // ceil(2.04) = 3
		{0.75, 3},
		{0.99, 4},
		{1.0, 4},
	}
	for _, c := range cases {
		if got := h.Quantile(c.q); got != c.want {
			t.Errorf("Quantile(%v) = %d, want %d", c.q, got, c.want)
		}
	}
	if h.Count() != 4 || h.Max() != 4 {
		t.Errorf("count=%d max=%d, want 4/4", h.Count(), h.Max())
	}
	if m := h.Mean(); m != 2.5 {
		t.Errorf("mean = %v, want 2.5", m)
	}
}

// TestHistogramBucketBoundaries verifies the log-bucket mapping at octave
// boundaries: 63 is still exact, 64 and 65 share the first 2-wide bucket,
// and both bounds round-trip through bucketIndex/bucketBounds.
func TestHistogramBucketBoundaries(t *testing.T) {
	if bucketIndex(63) == bucketIndex(64) {
		t.Error("63 and 64 share a bucket; 63 must stay exact")
	}
	if bucketIndex(64) != bucketIndex(65) {
		t.Error("64 and 65 should share the first 2-wide bucket")
	}
	if bucketIndex(65) == bucketIndex(66) {
		t.Error("65 and 66 must not share a bucket")
	}
	for _, v := range []int64{0, 1, 31, 32, 63, 64, 127, 128, 1 << 20, 1<<20 + 3} {
		idx := bucketIndex(v)
		lo, hi := bucketBounds(idx)
		if v < lo || v > hi {
			t.Errorf("value %d maps to bucket %d = [%d,%d], out of range", v, idx, lo, hi)
		}
	}
	// A single sample of 64 reports the bucket's upper bound clamped to
	// the observed max.
	h := NewHistogram()
	h.Record(64)
	if got := h.Quantile(0.5); got != 64 {
		t.Errorf("Quantile(0.5) of {64} = %d, want 64 (clamped to max)", got)
	}
	// 65 and 64 share a bucket: p50 of {64, 65} reports the bucket upper
	// bound 65.
	h.Record(65)
	if got := h.Quantile(0.5); got != 65 {
		t.Errorf("Quantile(0.5) of {64,65} = %d, want bucket upper bound 65", got)
	}
}

// TestHistogramQuantileErrorBound checks the relative error bound over a
// wide range: an estimate never errs below the true value and never more
// than one sub-bucket width above.
func TestHistogramQuantileErrorBound(t *testing.T) {
	for _, v := range []int64{100, 1000, 12345, 1 << 18, 987654321} {
		h := NewHistogram()
		h.Record(v)
		got := h.Quantile(0.99)
		if got < v {
			t.Errorf("Quantile underestimates: %d < %d", got, v)
		}
		if float64(got) > float64(v)*(1+2.0/histSubCount) {
			t.Errorf("Quantile %d exceeds error bound for %d", got, v)
		}
	}
}

func TestHistogramResetAndEmpty(t *testing.T) {
	h := NewHistogram()
	if h.Quantile(0.5) != 0 || h.Max() != 0 || h.Mean() != 0 {
		t.Error("empty histogram must report zeros")
	}
	h.Record(100)
	h.Record(-5) // clamps to 0
	if h.Count() != 2 {
		t.Errorf("count = %d, want 2", h.Count())
	}
	h.Reset()
	if h.Count() != 0 || h.Max() != 0 || h.Quantile(1) != 0 {
		t.Error("reset histogram must be empty")
	}
}

// TestHistogramSnapshotCanonicalJSON: identical sample sets produce
// byte-identical snapshot JSON (struct fields marshal in declaration
// order).
func TestHistogramSnapshotCanonicalJSON(t *testing.T) {
	build := func() []byte {
		h := NewHistogram()
		for i := int64(0); i < 1000; i++ {
			h.Record(i * 37 % 4096)
		}
		b, err := json.Marshal(h.Snapshot())
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	a, b := build(), build()
	if string(a) != string(b) {
		t.Errorf("snapshot JSON differs:\n%s\n%s", a, b)
	}
	var s HistogramSnapshot
	if err := json.Unmarshal(a, &s); err != nil {
		t.Fatal(err)
	}
	if s.Count != 1000 || s.P50 == 0 || s.P99 < s.P50 || s.Max < s.P99 {
		t.Errorf("snapshot not self-consistent: %+v", s)
	}
}

func TestHistogramConcurrentRecord(t *testing.T) {
	h := NewHistogram()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				h.Record(int64(w*1000 + i))
			}
		}(w)
	}
	wg.Wait()
	if h.Count() != 8000 {
		t.Errorf("count = %d, want 8000", h.Count())
	}
}

func TestRegistryHistogram(t *testing.T) {
	r := NewRegistry()
	r.Histogram("lat").Record(10)
	r.Histogram("lat").Record(20)
	snap := r.Snapshot()
	hs, ok := snap.Histograms["lat"]
	if !ok || hs.Count != 2 || hs.Max != 20 {
		t.Errorf("registry histogram snapshot = %+v", hs)
	}
}

// TestHistogramMerge: merging two histograms is exactly equivalent to
// recording both sample sets into one — bucket counts, count, sum, max
// and therefore every quantile. The cluster harness relies on this to
// merge per-chip latency distributions without approximation.
func TestHistogramMerge(t *testing.T) {
	a, b, ref := NewHistogram(), NewHistogram(), NewHistogram()
	for i := int64(0); i < 500; i++ {
		v := (i * 2654435761) % 100_000 // deterministic spread across octaves
		a.Record(v)
		ref.Record(v)
	}
	for i := int64(0); i < 300; i++ {
		v := (i*40503 + 17) % 1000
		b.Record(v)
		ref.Record(v)
	}
	a.Merge(b)
	if got, want := a.Snapshot(), ref.Snapshot(); got != want {
		t.Errorf("merged snapshot %+v != recorded-together %+v", got, want)
	}
	// Merging into an empty histogram copies; self-merge and nil-merge
	// are no-ops.
	empty := NewHistogram()
	empty.Merge(b)
	if got, want := empty.Snapshot(), b.Snapshot(); got != want {
		t.Errorf("merge into empty %+v != source %+v", got, want)
	}
	before := b.Snapshot()
	b.Merge(b)
	b.Merge(nil)
	if got := b.Snapshot(); got != before {
		t.Errorf("self/nil merge changed the histogram: %+v -> %+v", before, got)
	}
}
