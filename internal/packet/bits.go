// Package packet implements the host-level packet model shared by the
// functional profiler, the trace generators and the runtime: a byte buffer
// with headroom, a current-header offset (the paper's head_ptr), and a
// bit-packed metadata record (§2.2, Figure 3).
//
// Protocol fields are big-endian bit slices: bit 0 of a header is the most
// significant bit of its first byte, exactly as network protocols are drawn
// in RFCs.
package packet

// ReadBits extracts the big-endian bit field [bitOff, bitOff+bits) from
// data as a zero-extended 32-bit value. bits must be 1..32 and the range
// must lie within data; violations panic (they indicate compiler bugs, not
// user errors).
func ReadBits(data []byte, bitOff, bits int) uint32 {
	if bits <= 0 || bits > 32 {
		panic("packet: ReadBits width out of range")
	}
	var v uint64
	// Gather the bytes covering the field.
	first := bitOff / 8
	last := (bitOff + bits - 1) / 8
	for i := first; i <= last; i++ {
		v = v<<8 | uint64(data[i])
	}
	// Drop trailing bits past the field, then mask.
	drop := (last+1)*8 - (bitOff + bits)
	v >>= uint(drop)
	if bits < 32 {
		v &= (1 << uint(bits)) - 1
	}
	return uint32(v)
}

// WriteBits stores the low bits of val into the big-endian bit field
// [bitOff, bitOff+bits) of data.
func WriteBits(data []byte, bitOff, bits int, val uint32) {
	if bits <= 0 || bits > 32 {
		panic("packet: WriteBits width out of range")
	}
	v := uint64(val)
	if bits < 32 {
		v &= (1 << uint(bits)) - 1
	}
	first := bitOff / 8
	last := (bitOff + bits - 1) / 8
	var cur uint64
	for i := first; i <= last; i++ {
		cur = cur<<8 | uint64(data[i])
	}
	width := (last - first + 1) * 8
	drop := (last+1)*8 - (bitOff + bits)
	mask := uint64(0)
	if bits == 64 {
		mask = ^uint64(0)
	} else {
		mask = (uint64(1)<<uint(bits) - 1)
	}
	mask <<= uint(drop)
	cur = (cur &^ mask) | (v << uint(drop) & mask)
	for i := last; i >= first; i-- {
		data[i] = byte(cur)
		cur >>= 8
	}
	_ = width
}
