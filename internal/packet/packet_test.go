package packet

import (
	"testing"
	"testing/quick"

	"shangrila/internal/baker/parser"
	"shangrila/internal/baker/types"
)

func TestReadWriteBitsRoundTrip(t *testing.T) {
	cases := []struct {
		bitOff, bits int
		val          uint32
	}{
		{0, 8, 0xab},
		{0, 32, 0xdeadbeef},
		{4, 4, 0x5},
		{12, 3, 0x7},
		{7, 16, 0x1234},
		{31, 2, 0x3},
		{96, 16, 0x0800},
		{0, 1, 1},
	}
	for _, c := range cases {
		data := make([]byte, 32)
		WriteBits(data, c.bitOff, c.bits, c.val)
		if got := ReadBits(data, c.bitOff, c.bits); got != c.val {
			t.Errorf("off=%d bits=%d: wrote %#x read %#x", c.bitOff, c.bits, c.val, got)
		}
	}
}

func TestWriteBitsPreservesNeighbors(t *testing.T) {
	data := make([]byte, 8)
	for i := range data {
		data[i] = 0xff
	}
	WriteBits(data, 12, 8, 0)
	if ReadBits(data, 0, 12) != 0xfff {
		t.Errorf("prefix disturbed: %x", data)
	}
	if ReadBits(data, 20, 12) != 0xfff {
		t.Errorf("suffix disturbed: %x", data)
	}
	if ReadBits(data, 12, 8) != 0 {
		t.Errorf("field not cleared: %x", data)
	}
}

func TestBitsBigEndian(t *testing.T) {
	data := []byte{0x12, 0x34, 0x56, 0x78}
	if got := ReadBits(data, 0, 16); got != 0x1234 {
		t.Errorf("first 16 bits = %#x, want 0x1234", got)
	}
	if got := ReadBits(data, 8, 16); got != 0x3456 {
		t.Errorf("mid 16 bits = %#x, want 0x3456", got)
	}
}

func TestQuickBitsRoundTrip(t *testing.T) {
	f := func(off8 uint8, width8 uint8, val uint32) bool {
		bitOff := int(off8) % 200
		bits := 1 + int(width8)%32
		data := make([]byte, 32)
		masked := val
		if bits < 32 {
			masked &= (1 << uint(bits)) - 1
		}
		WriteBits(data, bitOff, bits, val)
		return ReadBits(data, bitOff, bits) == masked
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func protoEnv(t *testing.T) *types.Program {
	t.Helper()
	src := `
protocol ether { dst_hi:16; dst_lo:32; src_hi:16; src_lo:32; type:16; demux { 14 }; }
protocol ipv4 { ver:4; hlen:4; tos:8; length:16; id:16; flags:3; frag:13;
                ttl:8; proto:8; cksum:16; src:32; dst:32; demux { hlen << 2 }; }
protocol mpls { label:20; exp:3; s:1; ttl:8; demux { 4 }; }
metadata { rx_port:16; next_hop:16; }
module m { ppf f(ether ph){ packet_drop(ph); } wiring { rx -> f; } }
`
	prog, err := parser.Parse("t", src)
	if err != nil {
		t.Fatal(err)
	}
	tp, err := types.Check(prog)
	if err != nil {
		t.Fatal(err)
	}
	return tp
}

func TestFieldAccessAndDecap(t *testing.T) {
	tp := protoEnv(t)
	eth := tp.Protocols["ether"]
	ip := tp.Protocols["ipv4"]

	wire := make([]byte, 64)
	p := New(wire, tp.Metadata.Bytes)
	if err := p.WriteField(0, eth.Field("type"), 0x0800); err != nil {
		t.Fatal(err)
	}
	v, err := p.ReadField(0, eth.Field("type"))
	if err != nil || v != 0x0800 {
		t.Fatalf("type = %#x err=%v", v, err)
	}

	head, err := p.Decap(0, eth, tp.Consts)
	if err != nil {
		t.Fatal(err)
	}
	if head != 14 {
		t.Fatalf("head after ether decap = %d, want 14", head)
	}
	// Set IPv4 ver/hlen at the new header and decap dynamically.
	if err := p.WriteField(head, ip.Field("ver"), 4); err != nil {
		t.Fatal(err)
	}
	if err := p.WriteField(head, ip.Field("hlen"), 5); err != nil {
		t.Fatal(err)
	}
	size, err := p.HeaderSize(head, ip, tp.Consts)
	if err != nil || size != 20 {
		t.Fatalf("ipv4 header size = %d err=%v, want 20", size, err)
	}
	head, err = p.Decap(head, ip, tp.Consts)
	if err != nil {
		t.Fatal(err)
	}
	if head != 34 {
		t.Fatalf("head = %d, want 34", head)
	}
}

func TestEncapRestoresAndGrows(t *testing.T) {
	tp := protoEnv(t)
	eth := tp.Protocols["ether"]
	mpls := tp.Protocols["mpls"]

	p := New(make([]byte, 64), 4)
	head, err := p.Decap(0, eth, tp.Consts)
	if err != nil {
		t.Fatal(err)
	}
	head, err = p.Encap(head, eth)
	if err != nil {
		t.Fatal(err)
	}
	if head != 0 || p.Len() != 64 {
		t.Fatalf("after decap+encap: head=%d len=%d", head, p.Len())
	}
	// Encap at head 0 grows the packet front (an MPLS label push).
	head, err = p.Encap(head, mpls)
	if err != nil {
		t.Fatal(err)
	}
	if head != 0 || p.Len() != 68 {
		t.Fatalf("after mpls push: head=%d len=%d, want 0, 68", head, p.Len())
	}
	if err := p.WriteField(head, mpls.Field("label"), 12345); err != nil {
		t.Fatal(err)
	}
	v, _ := p.ReadField(head, mpls.Field("label"))
	if v != 12345 {
		t.Fatalf("label = %d", v)
	}
}

func TestMetadata(t *testing.T) {
	tp := protoEnv(t)
	p := New(make([]byte, 64), tp.Metadata.Bytes)
	nh := tp.Metadata.Field("next_hop")
	rx := tp.Metadata.Field("rx_port")
	p.SetMetaField(nh, 0xbeef)
	p.SetMetaField(rx, 7)
	if p.MetaField(nh) != 0xbeef || p.MetaField(rx) != 7 {
		t.Fatalf("meta = %d,%d", p.MetaField(nh), p.MetaField(rx))
	}
}

func TestCloneIsDeep(t *testing.T) {
	tp := protoEnv(t)
	eth := tp.Protocols["ether"]
	p := New(make([]byte, 64), 4)
	q := p.Clone()
	if err := q.WriteField(0, eth.Field("type"), 0x86dd); err != nil {
		t.Fatal(err)
	}
	v, _ := p.ReadField(0, eth.Field("type"))
	if v != 0 {
		t.Fatal("clone shares storage with original")
	}
}

func TestAddRemoveTail(t *testing.T) {
	p := New(make([]byte, 64), 4)
	p.AddTail(16)
	if p.Len() != 80 {
		t.Fatalf("len = %d, want 80", p.Len())
	}
	if err := p.RemoveTail(30); err != nil {
		t.Fatal(err)
	}
	if p.Len() != 50 {
		t.Fatalf("len = %d, want 50", p.Len())
	}
	if err := p.RemoveTail(1000); err == nil {
		t.Fatal("expected error removing more than payload")
	}
}
