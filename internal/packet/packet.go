package packet

import (
	"fmt"

	"shangrila/internal/baker/ast"
	"shangrila/internal/baker/types"
)

// Headroom is the spare space reserved before a packet's first byte so
// encapsulation can prepend headers without reallocating (the runtime
// reserves the same headroom in simulated DRAM buffers).
const Headroom = 64

// Packet is a host-level packet: data bytes with headroom and a metadata
// record. The current-header offset (the paper's head_ptr, Figure 3) is
// NOT part of the packet: it belongs to each packet_handle, so a stale
// handle held across packet_decap still denotes its original header. The
// interpreter and runtime carry the head offset alongside the packet.
type Packet struct {
	buf    []byte
	start  int // first packet byte within buf
	length int // packet length in bytes
	Meta   []byte
	Port   uint32 // receive port (also mirrored into metadata by Rx)
}

// New builds a packet from raw wire bytes, reserving headroom and a
// metadata record of metaBytes.
func New(wire []byte, metaBytes int) *Packet {
	buf := make([]byte, Headroom+len(wire))
	copy(buf[Headroom:], wire)
	return &Packet{buf: buf, start: Headroom, length: len(wire), Meta: make([]byte, metaBytes)}
}

// Bytes returns the current packet contents from the packet start.
func (p *Packet) Bytes() []byte { return p.buf[p.start : p.start+p.length] }

// Len returns the packet length in bytes.
func (p *Packet) Len() int { return p.length }

// Clone deep-copies the packet (packet_copy).
func (p *Packet) Clone() *Packet {
	return &Packet{
		buf:    append([]byte(nil), p.buf...),
		start:  p.start,
		length: p.length,
		Meta:   append([]byte(nil), p.Meta...),
		Port:   p.Port,
	}
}

// ReadField reads protocol field f of the header at byte offset head.
func (p *Packet) ReadField(head int, f *types.ProtoField) (uint32, error) {
	bitOff := (p.start+head)*8 + f.BitOff
	if bitOff < 0 || (bitOff+f.Bits+7)/8 > len(p.buf) {
		return 0, fmt.Errorf("packet: field %q read past end of %dB packet", f.Name, p.length)
	}
	return ReadBits(p.buf, bitOff, f.Bits), nil
}

// WriteField writes protocol field f of the header at byte offset head.
func (p *Packet) WriteField(head int, f *types.ProtoField, v uint32) error {
	bitOff := (p.start+head)*8 + f.BitOff
	if bitOff < 0 || (bitOff+f.Bits+7)/8 > len(p.buf) {
		return fmt.Errorf("packet: field %q write past end of %dB packet", f.Name, p.length)
	}
	WriteBits(p.buf, bitOff, f.Bits, v)
	return nil
}

// ReadRaw returns the width bytes at byte offset off from the header at
// head, aliased into the packet buffer (writes through it modify the
// packet).
func (p *Packet) ReadRaw(head, off, width int) ([]byte, error) {
	lo := p.start + head + off
	if lo < 0 || lo+width > len(p.buf) {
		return nil, fmt.Errorf("packet: raw access [%d,%d) out of bounds", off, off+width)
	}
	return p.buf[lo : lo+width], nil
}

// MetaField reads a metadata field.
func (p *Packet) MetaField(f *types.ProtoField) uint32 {
	return ReadBits(p.Meta, f.BitOff, f.Bits)
}

// SetMetaField writes a metadata field.
func (p *Packet) SetMetaField(f *types.ProtoField, v uint32) {
	WriteBits(p.Meta, f.BitOff, f.Bits, v)
}

// HeaderSize evaluates proto's demux expression against the header at
// head, yielding the header size in bytes. consts supplies program
// constants for demux expressions that reference them.
func (p *Packet) HeaderSize(head int, proto *types.Protocol, consts map[string]uint64) (int, error) {
	if proto.FixedSize >= 0 {
		return proto.FixedSize, nil
	}
	v, err := p.evalDemux(head, proto.Demux, proto, consts)
	if err != nil {
		return 0, err
	}
	if v > uint32(p.length) {
		return 0, fmt.Errorf("packet: %s demux %d exceeds packet length %d", proto.Name, v, p.length)
	}
	return int(v), nil
}

func (p *Packet) evalDemux(head int, e ast.Expr, proto *types.Protocol, consts map[string]uint64) (uint32, error) {
	switch e := e.(type) {
	case *ast.IntLit:
		return uint32(e.Value), nil
	case *ast.Ident:
		if f := proto.Field(e.Name); f != nil {
			return p.ReadField(head, f)
		}
		if v, ok := consts[e.Name]; ok {
			return uint32(v), nil
		}
		return 0, fmt.Errorf("packet: demux references unknown name %q", e.Name)
	case *ast.UnaryExpr:
		x, err := p.evalDemux(head, e.X, proto, consts)
		if err != nil {
			return 0, err
		}
		switch e.Op.String() {
		case "-":
			return -x, nil
		case "~":
			return ^x, nil
		}
		return 0, fmt.Errorf("packet: demux operator %s unsupported", e.Op)
	case *ast.BinaryExpr:
		x, err := p.evalDemux(head, e.X, proto, consts)
		if err != nil {
			return 0, err
		}
		y, err := p.evalDemux(head, e.Y, proto, consts)
		if err != nil {
			return 0, err
		}
		switch e.Op.String() {
		case "+":
			return x + y, nil
		case "-":
			return x - y, nil
		case "*":
			return x * y, nil
		case "/":
			if y == 0 {
				return 0, fmt.Errorf("packet: demux divide by zero")
			}
			return x / y, nil
		case "<<":
			return x << (y & 31), nil
		case ">>":
			return x >> (y & 31), nil
		case "&":
			return x & y, nil
		case "|":
			return x | y, nil
		case "^":
			return x ^ y, nil
		}
		return 0, fmt.Errorf("packet: demux operator %s unsupported", e.Op)
	}
	return 0, fmt.Errorf("packet: demux expression %T unsupported", e)
}

// Decap returns the header offset just past proto's header at head
// (packet_decap).
func (p *Packet) Decap(head int, proto *types.Protocol, consts map[string]uint64) (int, error) {
	size, err := p.HeaderSize(head, proto, consts)
	if err != nil {
		return 0, err
	}
	if head+size > p.length {
		return 0, fmt.Errorf("packet: decap of %s moves head past packet end", proto.Name)
	}
	return head + size, nil
}

// Encap returns the header offset of a new outer header placed before
// head, extending the packet front when head is too close to the packet
// start (packet_encap; MPLS label pushes use this to grow the stack).
// When the front grows, offsets held by other handles become stale — Baker
// programs release a handle when they encapsulate it, so this matches the
// language's immediate-release channel semantics.
func (p *Packet) Encap(head int, outer *types.Protocol) (int, error) {
	size := outer.FixedSize
	if size < 0 {
		size = outer.HeaderMin
	}
	if head >= size {
		return head - size, nil
	}
	grow := size - head
	if grow > p.start {
		nbuf := make([]byte, len(p.buf)+Headroom)
		copy(nbuf[Headroom:], p.buf[p.start:])
		p.buf = nbuf
		p.start = Headroom
	}
	p.start -= grow
	p.length += grow
	return 0, nil
}

// AddTail appends n zero bytes to the packet.
func (p *Packet) AddTail(n int) {
	need := p.start + p.length + n
	if need > len(p.buf) {
		p.buf = append(p.buf, make([]byte, need-len(p.buf))...)
	}
	for i := p.start + p.length; i < need; i++ {
		p.buf[i] = 0
	}
	p.length += n
}

// RemoveTail drops n bytes from the packet tail.
func (p *Packet) RemoveTail(n int) error {
	if n > p.length {
		return fmt.Errorf("packet: remove_tail %d exceeds packet length", n)
	}
	p.length -= n
	return nil
}
