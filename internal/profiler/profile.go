package profiler

import (
	"fmt"
	"sort"

	"shangrila/internal/baker/types"
	"shangrila/internal/ir"
	"shangrila/internal/packet"
)

// CacheLineBytes is the software-cache line size assumed when estimating
// hit rates (four words: one CAM entry maps one Local-Memory line).
const CacheLineBytes = 16

// SWCacheEntries matches the ME's 16-entry CAM (§3.3).
const SWCacheEntries = 16

// GlobalStats aggregates accesses to one global data structure.
type GlobalStats struct {
	Reads      uint64
	Writes     uint64
	InCritical bool // some access occurred inside a critical section
	// LineReads counts reads per cache-line-sized chunk, for hit-rate
	// estimation.
	LineReads map[uint32]uint64
}

// EstHitRate estimates the hit rate of a 16-entry line cache over the
// observed read stream: the share of reads landing on the 16 hottest lines
// (an upper-bound working-set argument that matches how the paper picks
// "high hit rate" candidates).
func (g *GlobalStats) EstHitRate() float64 {
	if g.Reads == 0 {
		return 0
	}
	counts := make([]uint64, 0, len(g.LineReads))
	for _, c := range g.LineReads {
		counts = append(counts, c)
	}
	sort.Slice(counts, func(i, j int) bool { return counts[i] > counts[j] })
	var top uint64
	for i, c := range counts {
		if i >= SWCacheEntries {
			break
		}
		top += c
	}
	return float64(top) / float64(g.Reads)
}

// FuncStats aggregates one function's dynamic behaviour.
type FuncStats struct {
	Invocations uint64
	// Instrs counts executed IR instructions (the PPF execution-time
	// estimate).
	Instrs uint64
	// MemAccesses counts executed memory-touching operations (global,
	// packet and metadata accesses), the dominant cost on the IXP.
	MemAccesses uint64
}

// Stats is the Functional profiler's output, consumed by the IPA/global
// optimizer (aggregation, memory mapping, SWC candidate selection).
type Stats struct {
	Packets   uint64 // trace packets injected
	Forwarded uint64 // packets reaching tx
	Dropped   uint64
	Funcs     map[string]*FuncStats
	Chans     map[string]uint64 // messages per channel
	Globals   map[string]*GlobalStats
}

// InstrsPerPacket returns fn's average executed instructions per
// invocation.
func (s *Stats) InstrsPerPacket(fn string) float64 {
	fs := s.Funcs[fn]
	if fs == nil || fs.Invocations == 0 {
		return 0
	}
	return float64(fs.Instrs) / float64(fs.Invocations)
}

// hostEnv is the profiler's host-memory execution environment.
type hostEnv struct {
	tp      *types.Program
	mem     map[string][]uint32 // global backing store, word granular
	queue   []queued            // pending channel messages (FIFO)
	stats   *Stats
	locks   map[int]bool
	inCrit  int
	current string // function whose accesses are being attributed
}

type queued struct {
	ch   *types.Channel
	p    *packet.Packet
	head int
}

func newHostEnv(tp *types.Program, stats *Stats) *hostEnv {
	env := &hostEnv{tp: tp, mem: map[string][]uint32{}, stats: stats, locks: map[int]bool{}}
	for name, g := range tp.Globals {
		env.mem[name] = make([]uint32, (g.Type.SizeBytes()+3)/4)
	}
	return env
}

func (e *hostEnv) gstats(g *types.Global) *GlobalStats {
	gs := e.stats.Globals[g.Name]
	if gs == nil {
		gs = &GlobalStats{LineReads: map[uint32]uint64{}}
		e.stats.Globals[g.Name] = gs
	}
	return gs
}

func (e *hostEnv) LoadWords(g *types.Global, off uint32, n int) ([]uint32, error) {
	buf := e.mem[g.Name]
	if int(off/4)+n > len(buf) {
		return nil, fmt.Errorf("global %s read out of range (off %d, %d words)", g.Name, off, n)
	}
	gs := e.gstats(g)
	gs.Reads++
	gs.LineReads[off/CacheLineBytes]++
	if e.inCrit > 0 {
		gs.InCritical = true
	}
	return buf[off/4 : off/4+uint32(n)], nil
}

func (e *hostEnv) StoreWords(g *types.Global, off uint32, words []uint32) error {
	buf := e.mem[g.Name]
	if int(off/4)+len(words) > len(buf) {
		return fmt.Errorf("global %s write out of range (off %d, %d words)", g.Name, off, len(words))
	}
	gs := e.gstats(g)
	gs.Writes++
	if e.inCrit > 0 {
		gs.InCritical = true
	}
	copy(buf[off/4:], words)
	return nil
}

func (e *hostEnv) ChannelPut(ch *types.Channel, p *packet.Packet, head int) error {
	e.stats.Chans[ch.Name]++
	e.queue = append(e.queue, queued{ch: ch, p: p, head: head})
	return nil
}

func (e *hostEnv) Drop(p *packet.Packet) { e.stats.Dropped++ }

func (e *hostEnv) Lock(id int)   { e.inCrit++ }
func (e *hostEnv) Unlock(id int) { e.inCrit-- }

func (e *hostEnv) NewPacket(proto *types.Protocol) *packet.Packet {
	size := proto.FixedSize
	if size < 0 {
		size = proto.HeaderMin
	}
	return packet.New(make([]byte, size), e.tp.Metadata.Bytes)
}

// observer attributes instruction counts to the running function.
type observer struct{ stats *Stats }

func (o *observer) OnInstr(fn *ir.Func, in *ir.Instr) {
	fs := o.stats.Funcs[fn.Name]
	if fs == nil {
		fs = &FuncStats{}
		o.stats.Funcs[fn.Name] = fs
	}
	fs.Instrs++
	switch in.Op {
	case ir.OpLoad, ir.OpStore, ir.OpPktLoad, ir.OpPktStore,
		ir.OpMetaLoad, ir.OpMetaStore:
		fs.MemAccesses++
	}
}

// Control names a control-plane invocation used to populate tables before
// profiling (the compile-time equivalent of the host driving the XScale).
type Control struct {
	Name string
	Args []uint32
}

// Profile interprets the program over the trace and returns the gathered
// statistics. Each trace packet enters at the rx-wired PPF; channel
// messages are dispatched FIFO to consumer PPFs until the system drains.
func Profile(prog *ir.Program, tr []*packet.Packet) (*Stats, error) {
	return ProfileWithControls(prog, tr, nil)
}

// ProfileWithControls is Profile with control-function table setup
// between init and the packet trace.
func ProfileWithControls(prog *ir.Program, tr []*packet.Packet, controls []Control) (*Stats, error) {
	stats := &Stats{
		Funcs:   map[string]*FuncStats{},
		Chans:   map[string]uint64{},
		Globals: map[string]*GlobalStats{},
	}
	env := newHostEnv(prog.Types, stats)
	it := &Interp{Prog: prog, Env: env, Obs: &observer{stats: stats}}

	// Run init functions first (they run on the XScale at load time).
	for _, name := range prog.Order {
		fn := prog.Funcs[name]
		if fn.Kind == ir.FuncInit && len(fn.Params) == 0 {
			if _, err := it.Run(fn, nil); err != nil {
				return nil, fmt.Errorf("profile: init %s: %w", name, err)
			}
		}
	}

	for _, c := range controls {
		vals := make([]Value, len(c.Args))
		for i, a := range c.Args {
			vals[i] = Value{W: a}
		}
		fn := prog.Func(c.Name)
		if fn == nil {
			return nil, fmt.Errorf("profile: no control function %q", c.Name)
		}
		if _, err := it.Run(fn, vals); err != nil {
			return nil, fmt.Errorf("profile: control %s: %w", c.Name, err)
		}
	}
	// Setup traffic (init + table population) must not pollute the
	// steady-state statistics: SWC's Equation 2 needs the *runtime* store
	// rate, and aggregation wants data-path execution weights.
	stats.Funcs = map[string]*FuncStats{}
	stats.Chans = map[string]uint64{}
	stats.Globals = map[string]*GlobalStats{}

	entry := prog.Types.Entry
	if entry == nil {
		return nil, fmt.Errorf("profile: program has no rx entry PPF")
	}
	entryFn := prog.Func(entry.Name)
	rxPort := prog.Types.Metadata.Field("rx_port")

	for _, p := range tr {
		stats.Packets++
		if rxPort != nil {
			p.SetMetaField(rxPort, p.Port)
		}
		if err := runPPF(it, stats, entryFn, p, 0); err != nil {
			return nil, err
		}
		// Drain channel messages.
		for len(env.queue) > 0 {
			msg := env.queue[0]
			env.queue = env.queue[1:]
			if msg.ch.Consumer == "tx" {
				stats.Forwarded++
				continue
			}
			consumer := prog.Func(msg.ch.Consumer)
			if consumer == nil {
				return nil, fmt.Errorf("profile: channel %s consumer %q missing",
					msg.ch.Name, msg.ch.Consumer)
			}
			if err := runPPF(it, stats, consumer, msg.p, msg.head); err != nil {
				return nil, err
			}
		}
	}
	return stats, nil
}

func runPPF(it *Interp, stats *Stats, fn *ir.Func, p *packet.Packet, head int) error {
	fs := stats.Funcs[fn.Name]
	if fs == nil {
		fs = &FuncStats{}
		stats.Funcs[fn.Name] = fs
	}
	fs.Invocations++
	_, err := it.Run(fn, []Value{{P: p, Head: head}})
	if err != nil {
		return fmt.Errorf("profile: %s: %w", fn.Name, err)
	}
	return nil
}

// RunControl invokes a control function (host-triggered table update) in
// the same environment used by Profile. It is exposed for tests and for
// the quickstart example; the runtime package has its own simulated-memory
// equivalent.
func (e *hostEnv) RunControl(it *Interp, name string, args []uint32) error {
	fn := it.Prog.Func(name)
	if fn == nil {
		return fmt.Errorf("no control function %q", name)
	}
	vals := make([]Value, len(args))
	for i, a := range args {
		vals[i] = Value{W: a}
	}
	_, err := it.Run(fn, vals)
	return err
}

// Session bundles an interpreter and host environment for integration
// tests and examples that want to run a Baker program functionally
// (outside the IXP model): inject packets, invoke control functions, and
// inspect outputs.
type Session struct {
	Prog  *ir.Program
	Stats *Stats
	env   *hostEnv
	it    *Interp
	// Out receives packets forwarded to tx along with the channel they
	// left on.
	Out []OutPacket
}

// OutPacket is a transmitted packet, its exit channel and final header
// offset.
type OutPacket struct {
	Chan *types.Channel
	P    *packet.Packet
	Head int
}

// NewSession builds a functional execution session, running init
// functions.
func NewSession(prog *ir.Program) (*Session, error) {
	stats := &Stats{
		Funcs:   map[string]*FuncStats{},
		Chans:   map[string]uint64{},
		Globals: map[string]*GlobalStats{},
	}
	env := newHostEnv(prog.Types, stats)
	s := &Session{Prog: prog, Stats: stats, env: env}
	s.it = &Interp{Prog: prog, Env: env}
	for _, name := range prog.Order {
		fn := prog.Funcs[name]
		if fn.Kind == ir.FuncInit && len(fn.Params) == 0 {
			if _, err := s.it.Run(fn, nil); err != nil {
				return nil, fmt.Errorf("init %s: %w", name, err)
			}
		}
	}
	return s, nil
}

// Control invokes a control function with word arguments.
func (s *Session) Control(name string, args ...uint32) error {
	return s.env.RunControl(s.it, name, args)
}

// Inject runs one packet through the application, collecting transmitted
// packets into s.Out.
func (s *Session) Inject(p *packet.Packet) error {
	entry := s.Prog.Types.Entry
	if entry == nil {
		return fmt.Errorf("program has no rx entry")
	}
	if rx := s.Prog.Types.Metadata.Field("rx_port"); rx != nil {
		p.SetMetaField(rx, p.Port)
	}
	s.Stats.Packets++
	if err := runPPF(s.it, s.Stats, s.Prog.Func(entry.Name), p, 0); err != nil {
		return err
	}
	for len(s.env.queue) > 0 {
		msg := s.env.queue[0]
		s.env.queue = s.env.queue[1:]
		if msg.ch.Consumer == "tx" {
			s.Stats.Forwarded++
			s.Out = append(s.Out, OutPacket{Chan: msg.ch, P: msg.p, Head: msg.head})
			continue
		}
		if err := runPPF(s.it, s.Stats, s.Prog.Func(msg.ch.Consumer), msg.p, msg.head); err != nil {
			return err
		}
	}
	return nil
}

// ReadGlobalWord reads one word of a global's host backing store (test
// hook).
func (s *Session) ReadGlobalWord(name string, off uint32) (uint32, error) {
	g := s.Prog.Types.Globals[name]
	if g == nil {
		return 0, fmt.Errorf("no global %q", name)
	}
	w, err := s.env.LoadWords(g, off, 1)
	if err != nil {
		return 0, err
	}
	return w[0], nil
}
