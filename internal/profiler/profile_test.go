package profiler

import (
	"testing"

	"shangrila/internal/baker/parser"
	"shangrila/internal/baker/types"
	"shangrila/internal/lower"
	"shangrila/internal/packet"
	"shangrila/internal/trace"
)

const appSrc = `
protocol ether { dst_hi:16; dst_lo:32; src_hi:16; src_lo:32; type:16; demux { 14 }; }
protocol ipv4 { ver:4; hlen:4; tos:8; length:16; id:16; flags:3; frag:13;
                ttl:8; proto:8; cksum:16; src:32; dst:32; demux { hlen << 2 }; }
metadata { rx_port:16; next_hop:16; }
const ETH_IP = 0x0800;

module app {
    struct Rt { dst:uint; nh:uint; }
    Rt table[64];
    uint hits;
    uint misses;
    channel ip_cc : ipv4;
    channel out_cc : ether;

    ppf clsfr(ether ph) {
        if (ph->type == ETH_IP) {
            ipv4 iph = packet_decap(ph);
            channel_put(ip_cc, iph);
        } else {
            packet_drop(ph);
        }
    }

    ppf fwd(ipv4 ph) {
        uint dst = ph->dst;
        uint nh = 0;
        for (uint i = 0; i < 64; i++) {
            if (table[i].dst == dst) { nh = table[i].nh; break; }
        }
        if (nh == 0) {
            misses += 1;
            packet_drop(ph);
        } else {
            hits += 1;
            ph->meta.next_hop = nh;
            ph->ttl = ph->ttl - 1;
            ether eph = packet_encap(ph);
            channel_put(out_cc, eph);
        }
    }

    control func add_route(uint idx, uint dst, uint nh) {
        table[idx].dst = dst;
        table[idx].nh = nh;
    }

    init func setup() {
        table[0].dst = 0x0a000001;
        table[0].nh = 5;
    }

    wiring { rx -> clsfr; ip_cc -> fwd; out_cc -> tx; }
}
`

func buildApp(t *testing.T) *Session {
	t.Helper()
	prog, err := parser.Parse("app.baker", appSrc)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	tp, err := types.Check(prog)
	if err != nil {
		t.Fatalf("check: %v", err)
	}
	p, err := lower.Lower(tp)
	if err != nil {
		t.Fatalf("lower: %v", err)
	}
	s, err := NewSession(p)
	if err != nil {
		t.Fatalf("session: %v", err)
	}
	return s
}

func mkPacket(t *testing.T, s *Session, dst uint32, ethType uint32) *packet.Packet {
	t.Helper()
	tp := s.Prog.Types
	p, err := trace.Build([]trace.Layer{
		{Proto: tp.Protocols["ether"], Fields: map[string]uint32{"type": ethType}},
		{Proto: tp.Protocols["ipv4"], Fields: map[string]uint32{"ver": 4, "hlen": 5, "ttl": 64, "dst": dst}, Size: 20},
	}, 64, tp.Metadata.Bytes)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestEndToEndForwarding(t *testing.T) {
	s := buildApp(t)
	// Init installed 0x0a000001 -> nh 5.
	p := mkPacket(t, s, 0x0a000001, 0x0800)
	if err := s.Inject(p); err != nil {
		t.Fatal(err)
	}
	if len(s.Out) != 1 {
		t.Fatalf("forwarded = %d, want 1", len(s.Out))
	}
	out := s.Out[0].P
	nh := out.MetaField(s.Prog.Types.Metadata.Field("next_hop"))
	if nh != 5 {
		t.Errorf("next_hop = %d, want 5", nh)
	}
	// TTL decremented in the IPv4 header (packet re-encapsulated, so the
	// header sits 14 bytes in).
	ttl := packet.ReadBits(out.Bytes(), (14+8)*8, 8)
	if ttl != 63 {
		t.Errorf("ttl = %d, want 63", ttl)
	}
	if s.Out[0].Head != 0 {
		t.Errorf("head = %d, want 0 after encap", s.Out[0].Head)
	}
}

func TestDropPaths(t *testing.T) {
	s := buildApp(t)
	// Non-IP packet dropped by clsfr.
	if err := s.Inject(mkPacket(t, s, 0, 0x0806)); err != nil {
		t.Fatal(err)
	}
	// Unknown destination dropped by fwd.
	if err := s.Inject(mkPacket(t, s, 0xdeadbeef, 0x0800)); err != nil {
		t.Fatal(err)
	}
	if len(s.Out) != 0 {
		t.Fatalf("forwarded = %d, want 0", len(s.Out))
	}
	if s.Stats.Dropped != 2 {
		t.Errorf("dropped = %d, want 2", s.Stats.Dropped)
	}
	misses, err := s.ReadGlobalWord("app.misses", 0)
	if err != nil {
		t.Fatal(err)
	}
	if misses != 1 {
		t.Errorf("misses = %d, want 1", misses)
	}
}

func TestControlFunction(t *testing.T) {
	s := buildApp(t)
	if err := s.Control("app.add_route", 3, 0xc0a80101, 9); err != nil {
		t.Fatal(err)
	}
	if err := s.Inject(mkPacket(t, s, 0xc0a80101, 0x0800)); err != nil {
		t.Fatal(err)
	}
	if len(s.Out) != 1 {
		t.Fatalf("forwarded = %d, want 1", len(s.Out))
	}
	nh := s.Out[0].P.MetaField(s.Prog.Types.Metadata.Field("next_hop"))
	if nh != 9 {
		t.Errorf("next_hop = %d, want 9", nh)
	}
}

func TestProfileStats(t *testing.T) {
	s := buildApp(t)
	var tr []*packet.Packet
	for i := 0; i < 10; i++ {
		dst := uint32(0x0a000001)
		if i%2 == 1 {
			dst = 0x99999999 // miss
		}
		tr = append(tr, mkPacket(t, s, dst, 0x0800))
	}
	stats, err := Profile(s.Prog, tr)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Packets != 10 {
		t.Errorf("packets = %d", stats.Packets)
	}
	if stats.Forwarded != 5 {
		t.Errorf("forwarded = %d, want 5", stats.Forwarded)
	}
	if stats.Dropped != 5 {
		t.Errorf("dropped = %d, want 5", stats.Dropped)
	}
	if stats.Chans["app.ip_cc"] != 10 {
		t.Errorf("ip_cc msgs = %d, want 10", stats.Chans["app.ip_cc"])
	}
	if stats.Chans["app.out_cc"] != 5 {
		t.Errorf("out_cc msgs = %d, want 5", stats.Chans["app.out_cc"])
	}
	clsfr := stats.Funcs["app.clsfr"]
	if clsfr == nil || clsfr.Invocations != 10 {
		t.Fatalf("clsfr stats = %+v", clsfr)
	}
	fwd := stats.Funcs["app.fwd"]
	if fwd == nil || fwd.Invocations != 10 || fwd.Instrs == 0 {
		t.Fatalf("fwd stats = %+v", fwd)
	}
	// table is read-heavy: hit-rate estimate should be near 1 (one line).
	gs := stats.Globals["app.table"]
	if gs == nil || gs.Reads == 0 {
		t.Fatalf("table stats = %+v", gs)
	}
	if hr := gs.EstHitRate(); hr < 0.5 {
		t.Errorf("table est hit rate = %.2f, want high", hr)
	}
	if stats.InstrsPerPacket("app.fwd") <= 0 {
		t.Error("InstrsPerPacket returned 0")
	}
}

func TestCriticalSectionTracking(t *testing.T) {
	src := `
protocol p { x:32; demux { 4 }; }
module m {
	uint counter;
	ppf f(p ph) { critical { counter += 1; } packet_drop(ph); }
	wiring { rx -> f; }
}`
	prog, err := parser.Parse("t", src)
	if err != nil {
		t.Fatal(err)
	}
	tp, err := types.Check(prog)
	if err != nil {
		t.Fatal(err)
	}
	ip, err := lower.Lower(tp)
	if err != nil {
		t.Fatal(err)
	}
	var tr []*packet.Packet
	for i := 0; i < 3; i++ {
		tr = append(tr, packet.New(make([]byte, 64), tp.Metadata.Bytes))
	}
	stats, err := Profile(ip, tr)
	if err != nil {
		t.Fatal(err)
	}
	gs := stats.Globals["m.counter"]
	if gs == nil || !gs.InCritical {
		t.Fatalf("counter critical tracking: %+v", gs)
	}
	if gs.Reads != 3 || gs.Writes != 3 {
		t.Errorf("counter reads=%d writes=%d, want 3/3", gs.Reads, gs.Writes)
	}
}

func TestInfiniteLoopDetected(t *testing.T) {
	src := `
protocol p { x:32; demux { 4 }; }
module m {
	ppf f(p ph) { while (1) { } packet_drop(ph); }
	wiring { rx -> f; }
}`
	prog, _ := parser.Parse("t", src)
	tp, err := types.Check(prog)
	if err != nil {
		t.Fatal(err)
	}
	ip, err := lower.Lower(tp)
	if err != nil {
		t.Fatal(err)
	}
	_, err = Profile(ip, []*packet.Packet{packet.New(make([]byte, 64), 4)})
	if err == nil {
		t.Fatal("expected runaway-loop error")
	}
}
