// Package profiler implements the Functional profiler of the paper's
// Figure 5: an IR interpreter that simulates the network application over a
// user-supplied packet trace, collecting PPF execution-time estimates,
// communication-channel utilizations and global data-structure access
// frequencies. The same interpreter doubles as the XScale execution path at
// runtime (infrequent aggregates run interpreted, as the paper's XScale
// binaries run compiled-by-gcc C).
package profiler

import (
	"fmt"

	"shangrila/internal/baker/types"
	"shangrila/internal/ir"
	"shangrila/internal/packet"
)

// Value is a register value: a 32-bit word or a packet handle. A handle
// is the pair (packet, header offset): the head_ptr belongs to the handle,
// not the packet (Figure 3 of the paper).
type Value struct {
	W    uint32
	P    *packet.Packet
	Head int
}

// Env abstracts the world the interpreter runs against: global data
// storage, channel output and locking. The profiler supplies a host-memory
// implementation; the runtime supplies one backed by simulated IXP memory.
type Env interface {
	// LoadWords reads n 32-bit words from global g at byte offset off.
	LoadWords(g *types.Global, off uint32, n int) ([]uint32, error)
	// StoreWords writes words to global g at byte offset off.
	StoreWords(g *types.Global, off uint32, words []uint32) error
	// ChannelPut places p, whose current header is at head, on channel ch.
	ChannelPut(ch *types.Channel, p *packet.Packet, head int) error
	// Drop releases a packet.
	Drop(p *packet.Packet)
	// Lock and Unlock bracket critical sections.
	Lock(id int)
	Unlock(id int)
	// NewPacket allocates a fresh packet for packet_create.
	NewPacket(proto *types.Protocol) *packet.Packet
}

// Observer receives execution events for statistics gathering. All methods
// are optional no-ops in baseObserver.
type Observer interface {
	// OnInstr fires for every executed instruction in function fn.
	OnInstr(fn *ir.Func, in *ir.Instr)
}

// MaxSteps bounds one function activation to catch runaway loops in user
// programs (Baker has loops; the budget is generous).
const MaxSteps = 10_000_000

// Interp interprets IR functions against an Env.
type Interp struct {
	Prog *ir.Program
	Env  Env
	Obs  Observer
}

// errHalt wraps user-level runtime errors with position info.
func execErr(in *ir.Instr, format string, args ...any) error {
	return fmt.Errorf("%s: %s", in.Pos, fmt.Sprintf(format, args...))
}

// Run executes fn with the given arguments and returns its result value
// (zero Value for void).
func (it *Interp) Run(fn *ir.Func, args []Value) (Value, error) {
	if len(args) != len(fn.Params) {
		return Value{}, fmt.Errorf("interp: %s called with %d args, want %d",
			fn.Name, len(args), len(fn.Params))
	}
	regs := make([]Value, fn.NumRegs)
	for i, p := range fn.Params {
		regs[p] = args[i]
	}
	steps := 0
	blk := fn.Entry
	var prev *ir.Block
	_ = prev
	for {
		var next *ir.Block
		for _, in := range blk.Instrs {
			steps++
			if steps > MaxSteps {
				return Value{}, fmt.Errorf("interp: %s exceeded %d steps (infinite loop?)", fn.Name, MaxSteps)
			}
			if it.Obs != nil {
				it.Obs.OnInstr(fn, in)
			}
			switch in.Op {
			case ir.OpConst:
				regs[in.Dst[0]] = Value{W: uint32(in.Imm)}
			case ir.OpMov:
				regs[in.Dst[0]] = regs[in.Args[0]]
			case ir.OpAdd, ir.OpSub, ir.OpMul, ir.OpDivU, ir.OpRemU,
				ir.OpAnd, ir.OpOr, ir.OpXor, ir.OpShl, ir.OpShrU, ir.OpShrS,
				ir.OpEq, ir.OpNe, ir.OpLtU, ir.OpLeU, ir.OpLtS, ir.OpLeS:
				x, y := regs[in.Args[0]], regs[in.Args[1]]
				v, err := alu(in, x, y)
				if err != nil {
					return Value{}, err
				}
				regs[in.Dst[0]] = v
			case ir.OpNot:
				regs[in.Dst[0]] = Value{W: ^regs[in.Args[0]].W}
			case ir.OpNeg:
				regs[in.Dst[0]] = Value{W: -regs[in.Args[0]].W}
			case ir.OpBr:
				next = in.Blocks[0]
			case ir.OpCondBr:
				if regs[in.Args[0]].W != 0 {
					next = in.Blocks[0]
				} else {
					next = in.Blocks[1]
				}
			case ir.OpRet:
				if len(in.Args) > 0 {
					return regs[in.Args[0]], nil
				}
				return Value{}, nil
			case ir.OpCall:
				callee := it.Prog.Func(in.Callee)
				if callee == nil {
					return Value{}, execErr(in, "unknown callee %q", in.Callee)
				}
				cargs := make([]Value, len(in.Args))
				for i, a := range in.Args {
					cargs[i] = regs[a]
				}
				rv, err := it.Run(callee, cargs)
				if err != nil {
					return Value{}, err
				}
				if len(in.Dst) > 0 {
					regs[in.Dst[0]] = rv
				}
			case ir.OpLoad:
				off, err := it.effAddr(in, regs)
				if err != nil {
					return Value{}, err
				}
				words, err := it.Env.LoadWords(in.Global, off, len(in.Dst))
				if err != nil {
					return Value{}, execErr(in, "%v", err)
				}
				for i, d := range in.Dst {
					regs[d] = Value{W: words[i]}
				}
			case ir.OpStore:
				off, err := it.effAddr(in, regs)
				if err != nil {
					return Value{}, err
				}
				words := make([]uint32, len(in.Args)-1)
				for i, a := range in.Args[1:] {
					words[i] = regs[a].W
				}
				if err := it.Env.StoreWords(in.Global, off, words); err != nil {
					return Value{}, execErr(in, "%v", err)
				}
			case ir.OpPktLoad:
				p := regs[in.Args[0]].P
				if p == nil {
					return Value{}, execErr(in, "packet load through nil handle")
				}
				head := regs[in.Args[0]].Head
				if in.Field != nil {
					v, err := p.ReadField(head, in.Field)
					if err != nil {
						return Value{}, execErr(in, "%v", err)
					}
					regs[in.Dst[0]] = Value{W: v}
				} else {
					raw, err := p.ReadRaw(head, int(in.Off), in.Width)
					if err != nil {
						return Value{}, execErr(in, "%v", err)
					}
					for i, d := range in.Dst {
						regs[d] = Value{W: beWord(raw[i*4:])}
					}
				}
			case ir.OpPktStore:
				p := regs[in.Args[0]].P
				if p == nil {
					return Value{}, execErr(in, "packet store through nil handle")
				}
				head := regs[in.Args[0]].Head
				if in.Field != nil {
					if err := p.WriteField(head, in.Field, regs[in.Args[1]].W); err != nil {
						return Value{}, execErr(in, "%v", err)
					}
				} else {
					raw, err := p.ReadRaw(head, int(in.Off), in.Width)
					if err != nil {
						return Value{}, execErr(in, "%v", err)
					}
					for i, a := range in.Args[1:] {
						putBEWord(raw[i*4:], regs[a].W)
					}
				}
			case ir.OpMetaLoad:
				p := regs[in.Args[0]].P
				if in.Field != nil {
					regs[in.Dst[0]] = Value{W: p.MetaField(in.Field)}
				} else {
					if int(in.Off)+in.Width > len(p.Meta) {
						return Value{}, execErr(in, "raw metadata read out of range")
					}
					for i, d := range in.Dst {
						regs[d] = Value{W: beWord(p.Meta[int(in.Off)+i*4:])}
					}
				}
			case ir.OpMetaStore:
				p := regs[in.Args[0]].P
				if in.Field != nil {
					p.SetMetaField(in.Field, regs[in.Args[1]].W)
				} else {
					if int(in.Off)+in.Width > len(p.Meta) {
						return Value{}, execErr(in, "raw metadata write out of range")
					}
					for i, a := range in.Args[1:] {
						putBEWord(p.Meta[int(in.Off)+i*4:], regs[a].W)
					}
				}
			case ir.OpDecap:
				h := regs[in.Args[0]]
				src := it.Prog.Types.ProtoByID[in.Imm]
				nh, err := h.P.Decap(h.Head, src, it.Prog.Types.Consts)
				if err != nil {
					return Value{}, execErr(in, "%v", err)
				}
				regs[in.Dst[0]] = Value{P: h.P, Head: nh}
			case ir.OpEncap:
				h := regs[in.Args[0]]
				nh, err := h.P.Encap(h.Head, in.Proto)
				if err != nil {
					return Value{}, execErr(in, "%v", err)
				}
				regs[in.Dst[0]] = Value{P: h.P, Head: nh}
			case ir.OpPktCopy:
				h := regs[in.Args[0]]
				regs[in.Dst[0]] = Value{P: h.P.Clone(), Head: h.Head}
			case ir.OpPktCreate:
				regs[in.Dst[0]] = Value{P: it.Env.NewPacket(in.Proto)}
			case ir.OpPktDrop:
				it.Env.Drop(regs[in.Args[0]].P)
			case ir.OpAddTail:
				regs[in.Args[0]].P.AddTail(int(regs[in.Args[1]].W))
			case ir.OpRemoveTail:
				if err := regs[in.Args[0]].P.RemoveTail(int(regs[in.Args[1]].W)); err != nil {
					return Value{}, execErr(in, "%v", err)
				}
			case ir.OpPktLength:
				regs[in.Dst[0]] = Value{W: uint32(regs[in.Args[0]].P.Len())}
			case ir.OpChanPut:
				h := regs[in.Args[0]]
				if err := it.Env.ChannelPut(in.Chan, h.P, h.Head); err != nil {
					return Value{}, execErr(in, "%v", err)
				}
			case ir.OpLockAcquire:
				it.Env.Lock(int(in.Imm))
			case ir.OpLockRelease:
				it.Env.Unlock(int(in.Imm))
			case ir.OpCacheLookup:
				// The host interpreter models the software cache as always
				// missing: the load path then reads the home location,
				// which is semantically the coherent behaviour.
				regs[in.Dst[0]] = Value{W: 0}
				for _, d := range in.Dst[1:] {
					regs[d] = Value{}
				}
			case ir.OpCacheFill, ir.OpCacheFlush:
				// No-ops on the host.
			default:
				return Value{}, execErr(in, "interp: unhandled op %s", in.Op)
			}
		}
		if next == nil {
			return Value{}, fmt.Errorf("interp: %s block b%d fell through without terminator", fn.Name, blk.ID)
		}
		prev, blk = blk, next
	}
}

func (it *Interp) effAddr(in *ir.Instr, regs []Value) (uint32, error) {
	off := uint32(in.Off)
	if len(in.Args) > 0 && in.Args[0] != ir.NoReg {
		off += regs[in.Args[0]].W
	}
	size := uint32(in.Global.Type.SizeBytes())
	if off+4 > size || off%4 != 0 {
		// Index out of range: report (Baker has no bounds checking on the
		// ME, but the profiler flags it as a program bug).
		if off+4 > size {
			return 0, execErr(in, "global %s access at byte %d out of range (size %d)",
				in.Global.Name, off, size)
		}
	}
	return off, nil
}

func alu(in *ir.Instr, x, y Value) (Value, error) {
	a, b := x.W, y.W
	switch in.Op {
	case ir.OpAdd:
		return Value{W: a + b}, nil
	case ir.OpSub:
		return Value{W: a - b}, nil
	case ir.OpMul:
		return Value{W: a * b}, nil
	case ir.OpDivU:
		if b == 0 {
			return Value{}, execErr(in, "division by zero")
		}
		return Value{W: a / b}, nil
	case ir.OpRemU:
		if b == 0 {
			return Value{}, execErr(in, "modulo by zero")
		}
		return Value{W: a % b}, nil
	case ir.OpAnd:
		return Value{W: a & b}, nil
	case ir.OpOr:
		return Value{W: a | b}, nil
	case ir.OpXor:
		return Value{W: a ^ b}, nil
	case ir.OpShl:
		return Value{W: a << (b & 31)}, nil
	case ir.OpShrU:
		return Value{W: a >> (b & 31)}, nil
	case ir.OpShrS:
		return Value{W: uint32(int32(a) >> (b & 31))}, nil
	case ir.OpEq:
		// Handle identity comparison when both sides are handles.
		if x.P != nil || y.P != nil {
			return boolVal(x.P == y.P), nil
		}
		return boolVal(a == b), nil
	case ir.OpNe:
		if x.P != nil || y.P != nil {
			return boolVal(x.P != y.P), nil
		}
		return boolVal(a != b), nil
	case ir.OpLtU:
		return boolVal(a < b), nil
	case ir.OpLeU:
		return boolVal(a <= b), nil
	case ir.OpLtS:
		return boolVal(int32(a) < int32(b)), nil
	case ir.OpLeS:
		return boolVal(int32(a) <= int32(b)), nil
	}
	return Value{}, execErr(in, "interp: not an ALU op %s", in.Op)
}

func boolVal(b bool) Value {
	if b {
		return Value{W: 1}
	}
	return Value{}
}

func beWord(b []byte) uint32 {
	return uint32(b[0])<<24 | uint32(b[1])<<16 | uint32(b[2])<<8 | uint32(b[3])
}

func putBEWord(b []byte, v uint32) {
	b[0] = byte(v >> 24)
	b[1] = byte(v >> 16)
	b[2] = byte(v >> 8)
	b[3] = byte(v)
}
