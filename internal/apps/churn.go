package apps

import "shangrila/internal/profiler"

// Control-plane churn policies: each benchmark application names a few
// policy items (routes, firewall rules, label entries) whose state the
// churn experiment flips at runtime through the XScale control path. A
// target's States are the announce alternatives — a per-item update
// version v applies States[(v-1) % len(States)] — and Withdrawn, when
// set, is the state a withdraw event installs (routes fall back to
// next-hop 0, i.e. the slow path; rule and label targets flip in place
// and never withdraw).

// ChurnTarget is one churned policy item.
type ChurnTarget struct {
	// Name labels the item in reports ("route 192.168.1/24", "rule 3").
	Name string
	// States are the control calls an announce event cycles through.
	States []profiler.Control
	// Withdrawn is the control call a withdraw event applies (nil if the
	// target cannot be withdrawn; withdraw events then re-announce).
	Withdrawn *profiler.Control
}

// ChurnPolicy is an application's churn surface.
type ChurnPolicy struct {
	Targets []ChurnTarget
}

// State returns the control for item i at per-item version v (1-based),
// honouring withdraws where the target supports them.
func (cp *ChurnPolicy) State(i int, v uint64, withdraw bool) profiler.Control {
	t := cp.Targets[i%len(cp.Targets)]
	if withdraw && t.Withdrawn != nil {
		return *t.Withdrawn
	}
	return t.States[int((v-1)%uint64(len(t.States)))]
}

// l3Churn flips three /24 routes between two next hops; a withdraw
// points the prefix at next-hop 0 (no neighbor → slow path) until the
// next announce.
func l3Churn() *ChurnPolicy {
	route := func(addr uint32, nhA, nhB uint32) ChurnTarget {
		mk := func(nh uint32) profiler.Control {
			return profiler.Control{Name: "l3switch.add_route", Args: []uint32{addr, 24, nh}}
		}
		w := mk(0)
		return ChurnTarget{
			Name:      "route",
			States:    []profiler.Control{mk(nhA), mk(nhB)},
			Withdrawn: &w,
		}
	}
	return &ChurnPolicy{Targets: []ChurnTarget{
		route(0xc0a80100, 4, 7), // 192.168.1/24: boot nh 4
		route(0x08080800, 6, 5), // 8.8.8/24: boot nh 6
		route(0x01010100, 7, 8), // 1.1.1/24: boot nh 7
	}}
}

// fwChurn flips the action of four installed rules (allow↔deny) in
// place; firewall rules are not withdrawn.
func fwChurn() *ChurnPolicy {
	rule := func(idx int) ChurnTarget {
		r := fwRules[idx]
		mk := func(action uint32) profiler.Control {
			nh := r.nh
			if action == fwActionDeny {
				nh = 0
			}
			return profiler.Control{Name: "firewall.add_rule",
				Args: []uint32{uint32(idx), r.src, r.smask, r.dst, r.dmask,
					r.sportlo, r.sporthi, r.dportlo, r.dporthi, r.proto, action, nh}}
		}
		return ChurnTarget{
			Name:   "rule",
			States: []profiler.Control{mk(1 - r.action), mk(r.action)},
		}
	}
	return &ChurnPolicy{Targets: []ChurnTarget{rule(0), rule(1), rule(3), rule(4)}}
}

// mplsChurn flips the outgoing label of four swap entries between two
// label plans (out+100 ↔ out+200); label entries flip in place.
func mplsChurn() *ChurnPolicy {
	var ts []ChurnTarget
	for _, l := range mplsPlan.swap[:4] {
		l := l
		mk := func(out uint32) profiler.Control {
			return profiler.Control{Name: "mplsapp.add_ilm",
				Args: []uint32{l & 1023, mplsOpSwap, out, 1 + l%4}}
		}
		ts = append(ts, ChurnTarget{
			Name:   "ilm",
			States: []profiler.Control{mk(l + 200), mk(l + 100)},
		})
	}
	return &ChurnPolicy{Targets: ts}
}
