package apps

import (
	"shangrila/internal/baker/types"
	"shangrila/internal/packet"
	"shangrila/internal/profiler"
	"shangrila/internal/trace"
	"shangrila/internal/workload"
)

// l3switchSrc is the Baker L3-Switch of §6.1: it bridges and routes IP
// packets. The critical path is the longest-prefix-match route lookup
// over a binary trie in SRAM; bridging uses a learning MAC table; ARP
// packets take the (rare) control path that aggregation maps to the
// XScale. The structure mirrors the paper's Figure 1 module diagram.
const l3switchSrc = protoPrelude + `
module l3switch {
    // Per-port router MAC addresses (hi16/lo32 halves).
    uint macs_hi[8];
    uint macs_lo[8];

    // LPM lookup: a 16-8 multibit trie, the classic network-processor
    // route structure. lpm16 is indexed by the top 16 address bits; an
    // entry either holds a next hop directly or points (high bit set) at
    // a 256-entry chunk indexed by the next 8 bits. Prefixes longer than
    // /24 are not used by the benchmark tables.
    uint lpm16[65536];
    uint lpm8[16384];
    uint next_chunk;

    // Next-hop neighbor table: MAC and output port per next-hop id.
    struct Neigh { machi:uint; maclo:uint; port:uint; }
    Neigh neighbors[256];

    // Learning bridge: direct-mapped MAC table hashed on the low bits.
    struct MacEnt { machi:uint; maclo:uint; port:uint; }
    MacEnt macs[256];

    // Counters.
    uint arp_seen;
    uint bad_ip;
    uint no_route;
    uint bridged;
    uint routed;
    uint flooded;

    channel arp_cc    : arp;
    channel l3_cc     : ipv4;
    channel bridge_cc : ether;
    channel encap_cc  : ether;
    channel out_cc    : ether;

    // l2_clsfr (Figure 2): ARP to the slow path; frames addressed to the
    // router MAC of the ingress port are routed; everything else bridges.
    ppf l2_clsfr(ether ph) {
        uint port = ph->meta.rx_port;
        uint d_hi = ph->dst_hi;
        uint d_lo = ph->dst_lo;
        uint ty   = ph->type;
        if (ty == ETH_ARP) {
            arp ah = packet_decap(ph);
            channel_put(arp_cc, ah);
        } else {
            if (ty == ETH_IP && d_hi == macs_hi[port] && d_lo == macs_lo[port]) {
                ipv4 iph = packet_decap(ph);
                channel_put(l3_cc, iph);
            } else {
                channel_put(bridge_cc, ph);
            }
        }
    }

    // l3_fwdr: validate, longest-prefix match, TTL + checksum rewrite.
    ppf l3_fwdr(ipv4 ph) {
        uint ver = ph->ver;
        uint ttl = ph->ttl;
        uint ck  = ph->cksum;
        uint dst = ph->dst;
        if (ver != 4 || ttl < 2) {
            bad_ip += 1;
            packet_drop(ph);
        } else {
            uint e = lpm16[dst >> 16];
            if ((e & 0x80000000) != 0) {
                uint chunk = e & 0x7fffffff;
                e = lpm8[(chunk << 8) | ((dst >> 8) & 255)];
            }
            uint best = e;
            if (best == 0) {
                no_route += 1;
                packet_drop(ph);
            } else {
                ph->ttl = ttl - 1;
                // RFC 1624 incremental checksum update for the TTL change.
                uint sum = ck + 0x0100;
                sum = (sum & 0xffff) + (sum >> 16);
                ph->cksum = sum;
                ph->meta.next_hop = best;
                routed += 1;
                ether eph = packet_encap(ph);
                channel_put(encap_cc, eph);
            }
        }
    }

    // l2_bridge: learn the source, look up the destination, flood on miss.
    ppf l2_bridge(ether ph) {
        uint s_hi = ph->src_hi;
        uint s_lo = ph->src_lo;
        uint port = ph->meta.rx_port;
        uint sidx = s_lo & 255;
        // MAC learning tolerates racy updates (a stale or torn entry only
        // misdirects a frame until the next packet relearns it — the same
        // error-tolerance argument as §5.2's delayed-update cache), so no
        // critical section guards the table.
        macs[sidx].machi = s_hi;
        macs[sidx].maclo = s_lo;
        macs[sidx].port  = port;
        uint d_hi = ph->dst_hi;
        uint d_lo = ph->dst_lo;
        uint didx = d_lo & 255;
        uint ohi = macs[didx].machi;
        uint olo = macs[didx].maclo;
        if (ohi == d_hi && olo == d_lo) {
            ph->meta.tx_port = macs[didx].port;
            bridged += 1;
        } else {
            ph->meta.tx_port = 7;  // flood port
            flooded += 1;
        }
        ph->meta.next_hop = 0;
        channel_put(out_cc, ph);
    }

    // eth_encap: rewrite the Ethernet header from the neighbor table.
    ppf eth_encap(ether ph) {
        uint nh = ph->meta.next_hop;
        ph->dst_hi = neighbors[nh].machi;
        ph->dst_lo = neighbors[nh].maclo;
        ph->src_hi = macs_hi[neighbors[nh].port];
        ph->src_lo = macs_lo[neighbors[nh].port];
        ph->meta.tx_port = neighbors[nh].port;
        channel_put(out_cc, ph);
    }

    // arp_handler: control path; counts requests (a full implementation
    // would synthesize replies via packet_create).
    ppf arp_handler(arp ph) {
        uint op = ph->op;
        if (op == 1 || op == 2) {
            critical { arp_seen += 1; }
        }
        packet_drop(ph);
    }

    // Control plane.
    control func set_port_mac(uint port, uint hi, uint lo) {
        macs_hi[port] = hi;
        macs_lo[port] = lo;
    }

    // add_route installs a prefix into the multibit trie. Longer prefixes
    // must be added after the shorter ones they refine (the benchmark
    // tables are ordered that way), matching how a routing daemon pushes
    // a sorted RIB.
    control func add_route(uint prefix, uint plen, uint nh) {
        if (plen <= 16) {
            uint base = prefix >> 16;
            uint span = 1 << (16 - plen);
            for (uint i = 0; i < span; i++) {
                lpm16[base + i] = nh;
            }
        } else {
            uint idx16 = prefix >> 16;
            uint e = lpm16[idx16];
            uint chunk = 0;
            if ((e & 0x80000000) != 0) {
                chunk = e & 0x7fffffff;
            } else {
                next_chunk += 1;
                chunk = next_chunk;
                // Seed the chunk with the covering shorter prefix.
                for (uint j = 0; j < 256; j++) {
                    lpm8[(chunk << 8) | j] = e;
                }
                lpm16[idx16] = 0x80000000 | chunk;
            }
            uint base8 = (prefix >> 8) & 255;
            uint span8 = 1 << (24 - plen);
            for (uint k = 0; k < span8; k++) {
                lpm8[(chunk << 8) | (base8 + k)] = nh;
            }
        }
    }

    control func add_neighbor(uint nh, uint machi, uint maclo, uint port) {
        neighbors[nh].machi = machi;
        neighbors[nh].maclo = maclo;
        neighbors[nh].port  = port;
    }

    wiring {
        rx -> l2_clsfr;
        arp_cc -> arp_handler;
        l3_cc -> l3_fwdr;
        bridge_cc -> l2_bridge;
        encap_cc -> eth_encap;
        out_cc -> tx;
    }
}
`

// l3Routes is the installed route set: a handful of hot prefixes (so the
// 16-entry software cache sees a high hit rate, as the paper's SWC
// candidates do) plus cold ones.
var l3Routes = []trace.Prefix{
	{Addr: 0x0a000000, Len: 8, NextHop: 1},  // 10/8
	{Addr: 0x0a010000, Len: 16, NextHop: 2}, // 10.1/16 (longer match inside 10/8)
	{Addr: 0xc0a80000, Len: 16, NextHop: 3}, // 192.168/16
	{Addr: 0xc0a80100, Len: 24, NextHop: 4}, // 192.168.1/24
	{Addr: 0xac100000, Len: 12, NextHop: 5}, // 172.16/12
	{Addr: 0x08080800, Len: 24, NextHop: 6},
	{Addr: 0x01010100, Len: 24, NextHop: 7},
	{Addr: 0x63000000, Len: 8, NextHop: 8},
}

// l3HotDsts are the hot destination addresses carrying ~70% of traffic.
var l3HotDsts = []uint32{
	0x0a0101aa, 0x0a0102bb, 0xc0a80105, 0xc0a80177,
	0xac101234, 0x08080801, 0x0a333333, 0x63051122,
}

// routerMAC returns the router MAC halves for a port.
func routerMAC(port uint32) (hi, lo uint32) {
	return 0x0a00, 0x5e000000 | port
}

// L3Switch builds the L3-Switch benchmark. Traffic mix: ~84% routed IP
// (destinations drawn from the installed prefixes, hot-prefix skewed),
// ~15% bridged frames, ~0.5% ARP (the XScale path).
func L3Switch() *App {
	controls := []profiler.Control{}
	for port := uint32(0); port < 8; port++ {
		hi, lo := routerMAC(port)
		controls = append(controls, profiler.Control{
			Name: "l3switch.set_port_mac", Args: []uint32{port, hi, lo}})
	}
	for _, rt := range l3Routes {
		controls = append(controls, profiler.Control{
			Name: "l3switch.add_route",
			Args: []uint32{rt.Addr, uint32(rt.Len), rt.NextHop}})
	}
	for nh := uint32(1); nh <= 8; nh++ {
		controls = append(controls, profiler.Control{
			Name: "l3switch.add_neighbor",
			Args: []uint32{nh, 0x0bb0, 0x11000000 + nh, nh % 3}})
	}
	return &App{
		Name:               "l3switch",
		Source:             l3switchSrc,
		Controls:           controls,
		Traffic:            l3Traffic(),
		MinForwardFraction: 0.9,
		Churn:              l3Churn(),
	}
}

// l3Traffic declares the L3-Switch mix: every 200th packet an ARP
// (control path), every 7th-mod-3 a bridged frame, the rest routed IP.
func l3Traffic() TraceSpec {
	return TraceSpec{Cases: []TraceCase{
		{Name: "arp", Every: 200, Offset: 199,
			Build: func(tp *types.Program, r *workload.Source, i int) *packet.Packet {
				p, err := trace.Build([]trace.Layer{
					{Proto: tp.Protocols["ether"], Fields: map[string]uint32{
						"dst_hi": 0xffff, "dst_lo": 0xffffffff,
						"src_hi": 0x0002, "src_lo": r.Uint32(), "type": 0x0806}},
					{Proto: tp.Protocols["arp"], Fields: map[string]uint32{
						"htype": 1, "ptype": 0x0800, "op": 1}},
				}, 64, tp.Metadata.Bytes)
				if err != nil {
					panic(err)
				}
				p.Port = uint32(r.Intn(3))
				return p
			}},
		{Name: "bridged", Every: 7, Offset: 3, // dst MAC != router MAC
			Build: func(tp *types.Program, r *workload.Source, i int) *packet.Packet {
				p, err := trace.Build([]trace.Layer{
					{Proto: tp.Protocols["ether"], Fields: map[string]uint32{
						"dst_hi": 0x0002, "dst_lo": uint32(r.Intn(64)),
						"src_hi": 0x0002, "src_lo": uint32(r.Intn(64)),
						"type": 0x0800}},
					{Proto: tp.Protocols["ipv4"], Fields: map[string]uint32{
						"ver": 4, "hlen": 5, "ttl": 17, "dst": r.Uint32()}, Size: 20},
				}, 64, tp.Metadata.Bytes)
				if err != nil {
					panic(err)
				}
				p.Port = uint32(r.Intn(3))
				return p
			}},
		// Routed IP: destination inside an installed prefix. Most traffic
		// belongs to a handful of hot flows (the skew that makes route
		// entries cacheable, §5.2); the tail spreads across the full table.
		{Name: "routed", Weight: 1,
			Build: func(tp *types.Program, r *workload.Source, i int) *packet.Packet {
				var dst uint32
				if r.Intn(10) < 7 {
					dst = l3HotDsts[r.Intn(len(l3HotDsts))]
				} else {
					dst = r.AddrInPrefix(l3Routes[r.Intn(len(l3Routes))])
				}
				port := uint32(r.Intn(3))
				hi, lo := routerMAC(port)
				p := buildIP(tp, r, hi, lo, dst, 6, 0, 0, false)
				p.Port = port
				return p
			}},
	}}
}
