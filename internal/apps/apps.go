// Package apps contains the three benchmark applications of the paper's
// evaluation (§6.1) written in Baker — L3-Switch, MPLS and Firewall —
// together with their control-plane table setup and synthetic NPF-style
// traffic generators (the substitution for the NPF benchmark traces and
// the IXIA generator; see DESIGN.md).
package apps

import (
	"shangrila/internal/baker/types"
	"shangrila/internal/packet"
	"shangrila/internal/profiler"
	"shangrila/internal/trace"
	"shangrila/internal/workload"
)

// App bundles one benchmark application.
type App struct {
	// Name identifies the app ("l3switch", "mpls", "firewall").
	Name string
	// Source is the Baker program text.
	Source string
	// Controls returns the control-plane calls that populate the app's
	// tables (routes, labels, rules); they run both at profile time and
	// at runtime boot.
	Controls []profiler.Control
	// Traffic declares the app's input-traffic mix; Trace renders it.
	// Hand-written and generated apps use the same spec type, so both
	// are first-class citizens of every experiment.
	Traffic TraceSpec
	// MinForwardFraction is the fraction of trace packets expected to be
	// forwarded (used by integration tests as a sanity band).
	MinForwardFraction float64
	// Churn names the policy items the control-plane churn experiment
	// flips at runtime (see ChurnPolicy).
	Churn *ChurnPolicy
}

// Trace generates n packets exercising the app's hot paths with the
// mix declared by Traffic.
func (a *App) Trace(tp *types.Program, seed uint64, n int) []*packet.Packet {
	return a.Traffic.Generate(tp, seed, n)
}

// All returns the three benchmark applications.
func All() []*App {
	return []*App{L3Switch(), MPLS(), Firewall()}
}

// common protocol prelude shared by the applications. MAC addresses are
// split into 16-bit and 32-bit halves: Baker targets a 32-bit machine, so
// fields wider than one word must be declared split (and the split halves
// are exactly what PAC recombines into single wide accesses).
const protoPrelude = `
protocol ether {
    dst_hi : 16;
    dst_lo : 32;
    src_hi : 16;
    src_lo : 32;
    type   : 16;
    demux { 14 };
}

protocol ipv4 {
    ver    : 4;
    hlen   : 4;
    tos    : 8;
    length : 16;
    id     : 16;
    flags  : 3;
    frag   : 13;
    ttl    : 8;
    proto  : 8;
    cksum  : 16;
    src    : 32;
    dst    : 32;
    demux { hlen << 2 };
}

protocol mpls {
    label : 20;
    exp   : 3;
    s     : 1;
    mttl  : 8;
    demux { 4 };
}

protocol l4 {
    sport : 16;
    dport : 16;
    demux { 4 };
}

// ipv4tcp is the option-less IPv4+L4 fast-path view: when hlen == 5 the
// transport ports sit at fixed offsets, so the whole 5-tuple is one
// statically-resolved header (real ME code uses exactly this trick; the
// rare option-carrying packets take the slow path).
protocol ipv4tcp {
    ver    : 4;
    hlen   : 4;
    tos    : 8;
    length : 16;
    id     : 16;
    flags  : 3;
    frag   : 13;
    ttl    : 8;
    proto  : 8;
    cksum  : 16;
    src    : 32;
    dst    : 32;
    sport  : 16;
    dport  : 16;
    demux { 24 };
}

protocol arp {
    htype : 16;
    ptype : 16;
    hlen8 : 8;
    plen8 : 8;
    op    : 16;
    demux { 28 };
}

metadata {
    rx_port  : 8;
    tx_port  : 8;
    next_hop : 16;
    flow_id  : 16;
}

const ETH_IP   = 0x0800;
const ETH_ARP  = 0x0806;
const ETH_MPLS = 0x8847;
`

// buildIP constructs an Ethernet/IPv4(/L4) frame.
func buildIP(tp *types.Program, r *workload.Source, dstMACHi, dstMACLo, dstIP uint32,
	proto uint32, sport, dport uint32, withL4 bool) *packet.Packet {
	layers := []trace.Layer{
		{Proto: tp.Protocols["ether"], Fields: map[string]uint32{
			"dst_hi": dstMACHi, "dst_lo": dstMACLo,
			"src_hi": 0x0002, "src_lo": r.Uint32(),
			"type": 0x0800}},
		{Proto: tp.Protocols["ipv4"], Fields: map[string]uint32{
			"ver": 4, "hlen": 5, "length": 46, "ttl": 32 + uint32(r.Intn(32)),
			"proto": proto, "cksum": r.Uint32() & 0xffff,
			"src": r.Uint32(), "dst": dstIP}, Size: 20},
	}
	if withL4 {
		layers = append(layers, trace.Layer{Proto: tp.Protocols["l4"],
			Fields: map[string]uint32{"sport": sport, "dport": dport}})
	}
	p, err := trace.Build(layers, 64, tp.Metadata.Bytes)
	if err != nil {
		panic(err)
	}
	p.Port = uint32(r.Intn(3))
	return p
}
