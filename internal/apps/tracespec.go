package apps

import (
	"fmt"

	"shangrila/internal/baker/types"
	"shangrila/internal/packet"
	"shangrila/internal/workload"
)

// TraceSpec is the declarative traffic-mix description shared by the
// hand-written benchmark apps and generated (bakergen) programs: a list
// of cases, each able to construct one packet, selected per packet index
// by either a modulo rule or a weighted roll. Hand-written and generated
// apps alike supply source, controls, churn policy and input traffic
// through the same App struct, so a generated program is a first-class
// *App value usable by every experiment.
//
// Selection semantics (chosen to reproduce the historical per-app trace
// builders call-for-call, so the engine golden snapshots — which pin the
// PRNG sequence — stay byte-identical):
//
//  1. Modulo cases (Every > 0) are checked first, in declaration order;
//     the first with i%Every == Offset wins and consumes no randomness.
//  2. Otherwise a weighted case is chosen. If exactly one weighted case
//     exists it wins without drawing from the PRNG; with several, a
//     single r.Intn(sum of weights) roll selects by cumulative weight.
type TraceSpec struct {
	Cases []TraceCase
}

// TraceCase is one branch of a TraceSpec.
type TraceCase struct {
	// Name labels the case for feature-coverage accounting (fuzz
	// campaigns histogram which cases actually fired).
	Name string
	// Every/Offset select this case for packet indices i with
	// i%Every == Offset (modulo case). Zero Every means the case is
	// weighted instead.
	Every  int
	Offset int
	// Weight is the selection weight among the weighted cases.
	Weight int
	// Build constructs the packet for index i. It may draw from r; the
	// sequence of draws is part of the app's deterministic identity.
	Build func(tp *types.Program, r *workload.Source, i int) *packet.Packet
}

// Generate produces n packets from the spec using a seeded SplitMix64
// source. It panics on a malformed spec (no case applicable to some
// index), matching the historical builders which panicked on internal
// trace errors.
func (s TraceSpec) Generate(tp *types.Program, seed uint64, n int) []*packet.Packet {
	out, _ := s.GenerateCounted(tp, seed, n)
	return out
}

// GenerateCounted is Generate plus an exact per-case histogram keyed by
// case name — the feature-coverage view fuzz campaigns aggregate across
// programs.
func (s TraceSpec) GenerateCounted(tp *types.Program, seed uint64, n int) ([]*packet.Packet, map[string]int) {
	r := workload.NewSource(seed)
	var weighted []TraceCase
	total := 0
	for _, c := range s.Cases {
		if c.Every <= 0 {
			weighted = append(weighted, c)
			total += c.Weight
		}
	}
	var out []*packet.Packet
	counts := make(map[string]int)
	for i := 0; i < n; i++ {
		c, ok := s.pick(weighted, total, r, i)
		if !ok {
			panic(fmt.Sprintf("apps: TraceSpec has no case for packet index %d", i))
		}
		counts[c.Name]++
		out = append(out, c.Build(tp, r, i))
	}
	return out, counts
}

// pick selects the case for packet index i, drawing at most one roll.
func (s TraceSpec) pick(weighted []TraceCase, total int, r *workload.Source, i int) (TraceCase, bool) {
	for _, c := range s.Cases {
		if c.Every > 0 && i%c.Every == c.Offset {
			return c, true
		}
	}
	switch {
	case len(weighted) == 1:
		return weighted[0], true
	case len(weighted) > 1:
		roll := r.Intn(total)
		acc := 0
		for _, c := range weighted {
			acc += c.Weight
			if roll < acc {
				return c, true
			}
		}
	}
	return TraceCase{}, false
}
