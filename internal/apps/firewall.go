package apps

import (
	"shangrila/internal/baker/types"
	"shangrila/internal/packet"
	"shangrila/internal/profiler"
	"shangrila/internal/workload"
)

// Firewall rule actions.
const (
	fwActionDeny  = 0
	fwActionAllow = 1
)

// firewallSrc is the Baker Firewall of §6.1: a classifier attaches flow
// ids by matching source/destination IPs, ports, protocol and TOS against
// an ordered list of user-defined patterns (first match wins); selected
// flows are dropped. Allowed packets forward through a small next-hop
// table.
const firewallSrc = protoPrelude + `
module firewall {
    // Ordered rule list (the paper's pattern classifier): masked IP
    // matches, port ranges, protocol and TOS wildcard via mask 0.
    struct Rule {
        valid:uint;
        src:uint;  smask:uint;
        dst:uint;  dmask:uint;
        sportlo:uint; sporthi:uint;
        dportlo:uint; dporthi:uint;
        proto:uint;   pmask:uint;
        tos:uint;     tmask:uint;
        action:uint;  nh:uint;
    }
    Rule rules[64];
    uint nrules;

    struct Neigh { machi:uint; maclo:uint; port:uint; }
    Neigh neighbors[16];

    uint allowed;
    uint denied;
    uint unmatched;
    uint non_ip;

    channel ip_cc    : ipv4tcp;
    channel slow_cc  : ipv4;
    channel fwd_cc   : ipv4tcp;
    channel out_cc   : ether;

    uint slowpath;

    // eth_clsfr: the firewall is transparent (bump-in-the-wire); the
    // option-less fast path (hlen == 5, the overwhelming majority) uses
    // the statically-laid-out ipv4tcp view, options go to the slow path.
    ppf eth_clsfr(ether ph) {
        if (ph->type == ETH_IP) {
            ipv4tcp iph = packet_decap(ph);
            if (iph->ver == 4 && iph->hlen == 5) {
                channel_put(ip_cc, iph);
            } else {
                ipv4 sph = packet_decap(ph);
                channel_put(slow_cc, sph);
            }
        } else {
            non_ip += 1;
            packet_drop(ph);
        }
    }

    // slow_path: option-carrying packets (rare) are policy-dropped on the
    // control processor.
    ppf slow_path(ipv4 ph) {
        critical { slowpath += 1; }
        packet_drop(ph);
    }

    // classify: walk the ordered rule list; first match decides.
    ppf classify(ipv4tcp ph) {
        uint src = ph->src;
        uint dst = ph->dst;
        uint proto = ph->proto;
        uint tos = ph->tos;
        uint sport = ph->sport;
        uint dport = ph->dport;
        ipv4tcp iph = ph;

        uint matched = 0;
        uint action = 0;
        uint nh = 0;
        uint fid = 0;
        uint n = nrules;
        for (uint i = 0; i < n; i++) {
            if (rules[i].valid == 1) {
                uint okSrc = ((src & rules[i].smask) == rules[i].src);
                uint okDst = ((dst & rules[i].dmask) == rules[i].dst);
                uint okSp = (sport >= rules[i].sportlo && sport <= rules[i].sporthi);
                uint okDp = (dport >= rules[i].dportlo && dport <= rules[i].dporthi);
                uint okPr = ((proto & rules[i].pmask) == rules[i].proto);
                uint okTos = ((tos & rules[i].tmask) == rules[i].tos);
                if (okSrc != 0 && okDst != 0 && okSp != 0 && okDp != 0 && okPr != 0 && okTos != 0) {
                    matched = 1;
                    action = rules[i].action;
                    nh = rules[i].nh;
                    fid = i + 1;
                    break;
                }
            }
        }
        if (matched == 0) {
            // Default deny.
            unmatched += 1;
            packet_drop(iph);
        } else {
            if (action == 0) {
                denied += 1;
                packet_drop(iph);
            } else {
                iph->meta.flow_id = fid;
                iph->meta.next_hop = nh;
                channel_put(fwd_cc, iph);
            }
        }
    }

    // forward: the firewall is transparent — allowed packets pass
    // unmodified to the egress port chosen by the matching rule.
    ppf forward(ipv4tcp ph) {
        allowed += 1;
        ph->meta.tx_port = neighbors[ph->meta.next_hop & 15].port;
        ether eph = packet_encap(ph);
        channel_put(out_cc, eph);
    }

    control func add_rule(uint idx, uint src, uint smask, uint dst, uint dmask,
                          uint sportlo, uint sporthi, uint dportlo, uint dporthi,
                          uint proto, uint action, uint nh) {
        rules[idx].src = src;
        rules[idx].smask = smask;
        rules[idx].dst = dst;
        rules[idx].dmask = dmask;
        rules[idx].sportlo = sportlo;
        rules[idx].sporthi = sporthi;
        rules[idx].dportlo = dportlo;
        rules[idx].dporthi = dporthi;
        rules[idx].proto = proto;
        rules[idx].pmask = 0xff;
        rules[idx].tos = 0;
        rules[idx].tmask = 0;
        rules[idx].action = action;
        rules[idx].nh = nh;
        rules[idx].valid = 1;
        if (idx >= nrules) { nrules = idx + 1; }
    }

    control func add_neighbor(uint nh, uint machi, uint maclo, uint port) {
        neighbors[nh].machi = machi;
        neighbors[nh].maclo = maclo;
        neighbors[nh].port  = port;
    }

    wiring {
        rx -> eth_clsfr;
        ip_cc -> classify;
        slow_cc -> slow_path;
        fwd_cc -> forward;
        out_cc -> tx;
    }
}
`

// fwRule mirrors the installed rules for trace generation.
type fwRule struct {
	src, smask, dst, dmask             uint32
	sportlo, sporthi, dportlo, dporthi uint32
	proto                              uint32
	action                             uint32
	nh                                 uint32
}

var fwRules = []fwRule{
	// Allow internal web traffic.
	{src: 0x0a000000, smask: 0xff000000, dst: 0xc0a80000, dmask: 0xffff0000,
		sportlo: 1024, sporthi: 65535, dportlo: 80, dporthi: 80, proto: 6, action: fwActionAllow, nh: 1},
	// Allow DNS.
	{src: 0x0a000000, smask: 0xff000000, dst: 0x08080808, dmask: 0xffffffff,
		sportlo: 1024, sporthi: 65535, dportlo: 53, dporthi: 53, proto: 17, action: fwActionAllow, nh: 2},
	// Deny telnet anywhere.
	{src: 0, smask: 0, dst: 0, dmask: 0,
		sportlo: 0, sporthi: 65535, dportlo: 23, dporthi: 23, proto: 6, action: fwActionDeny, nh: 0},
	// Allow established high ports back in.
	{src: 0xc0a80000, smask: 0xffff0000, dst: 0x0a000000, dmask: 0xff000000,
		sportlo: 80, sporthi: 80, dportlo: 1024, dporthi: 65535, proto: 6, action: fwActionAllow, nh: 3},
	// Allow SSH to the bastion.
	{src: 0, smask: 0, dst: 0x0a000001, dmask: 0xffffffff,
		sportlo: 0, sporthi: 65535, dportlo: 22, dporthi: 22, proto: 6, action: fwActionAllow, nh: 4},
	// Deny a blacklisted /16.
	{src: 0x31330000, smask: 0xffff0000, dst: 0, dmask: 0,
		sportlo: 0, sporthi: 65535, dportlo: 0, dporthi: 65535, proto: 6, action: fwActionDeny, nh: 0},
}

// Firewall builds the firewall benchmark. Traffic mix: ~70% packets
// matching allow rules, ~20% matching deny rules, ~10% unmatched
// (default deny); all carry L4 headers.
func Firewall() *App {
	var controls []profiler.Control
	for i, r := range fwRules {
		controls = append(controls, profiler.Control{Name: "firewall.add_rule",
			Args: []uint32{uint32(i), r.src, r.smask, r.dst, r.dmask,
				r.sportlo, r.sporthi, r.dportlo, r.dporthi, r.proto, r.action, r.nh}})
	}
	for nh := uint32(1); nh <= 4; nh++ {
		controls = append(controls, profiler.Control{Name: "firewall.add_neighbor",
			Args: []uint32{nh, 0x0dd0, 0x33000000 + nh, nh % 3}})
	}
	return &App{
		Name:               "firewall",
		Source:             firewallSrc,
		Controls:           controls,
		Traffic:            fwTraffic(),
		MinForwardFraction: 0.55,
		Churn:              fwChurn(),
	}
}

// fwTraffic declares the firewall mix as weighted cases; the single
// per-packet selection roll and cumulative boundaries reproduce the
// historical switch exactly.
func fwTraffic() TraceSpec {
	return TraceSpec{Cases: []TraceCase{
		{Name: "web-allow", Weight: 45, // rule 0
			Build: func(tp *types.Program, r *workload.Source, i int) *packet.Packet {
				src := 0x0a000000 | (r.Uint32() & 0x00ffffff)
				dst := 0xc0a80000 | (r.Uint32() & 0xffff)
				p := buildIP(tp, r, 0x0a00, 0x5e00000f, dst, 6, 1024+uint32(r.Intn(60000)), 80, true)
				setIPSrc(tp, p, src)
				return p
			}},
		{Name: "dns-allow", Weight: 15, // rule 1
			Build: func(tp *types.Program, r *workload.Source, i int) *packet.Packet {
				src := 0x0a000000 | (r.Uint32() & 0x00ffffff)
				p := buildIP(tp, r, 0x0a00, 0x5e00000f, 0x08080808, 17, 1024+uint32(r.Intn(60000)), 53, true)
				setIPSrc(tp, p, src)
				return p
			}},
		{Name: "return-allow", Weight: 10, // rule 3
			Build: func(tp *types.Program, r *workload.Source, i int) *packet.Packet {
				src := 0xc0a80000 | (r.Uint32() & 0xffff)
				dst := 0x0a000000 | (r.Uint32() & 0x00ffffff)
				p := buildIP(tp, r, 0x0a00, 0x5e00000f, dst, 6, 80, 1024+uint32(r.Intn(60000)), true)
				setIPSrc(tp, p, src)
				return p
			}},
		{Name: "telnet-deny", Weight: 10, // rule 2
			Build: func(tp *types.Program, r *workload.Source, i int) *packet.Packet {
				return buildIP(tp, r, 0x0a00, 0x5e00000f, r.Uint32(), 6, 40000, 23, true)
			}},
		{Name: "blacklist-deny", Weight: 10, // rule 5
			Build: func(tp *types.Program, r *workload.Source, i int) *packet.Packet {
				src := 0x31330000 | (r.Uint32() & 0xffff)
				p := buildIP(tp, r, 0x0a00, 0x5e00000f, r.Uint32(), 6, 40000, 8080, true)
				setIPSrc(tp, p, src)
				return p
			}},
		{Name: "default-deny", Weight: 10, // unmatched
			Build: func(tp *types.Program, r *workload.Source, i int) *packet.Packet {
				return buildIP(tp, r, 0x0a00, 0x5e00000f, 0x7f000001, 132, 7, 7, true)
			}},
	}}
}

// setIPSrc rewrites the IPv4 source of a freshly built Ethernet/IPv4
// packet.
func setIPSrc(tp *types.Program, p *packet.Packet, src uint32) {
	f := tp.Protocols["ipv4"].Field("src")
	if err := p.WriteField(14, f, src); err != nil {
		panic(err)
	}
}
