package apps_test

import (
	"testing"

	"shangrila/internal/apps"
	"shangrila/internal/baker/parser"
	"shangrila/internal/baker/types"
	"shangrila/internal/lower"
	"shangrila/internal/profiler"
	"shangrila/internal/trace"
)

func buildApp(t *testing.T, a *apps.App) *profiler.Session {
	t.Helper()
	astProg, err := parser.Parse(a.Name+".baker", a.Source)
	if err != nil {
		t.Fatalf("parse %s: %v", a.Name, err)
	}
	tp, err := types.Check(astProg)
	if err != nil {
		t.Fatalf("check %s: %v", a.Name, err)
	}
	prog, err := lower.Lower(tp)
	if err != nil {
		t.Fatalf("lower %s: %v", a.Name, err)
	}
	s, err := profiler.NewSession(prog)
	if err != nil {
		t.Fatalf("session %s: %v", a.Name, err)
	}
	for _, c := range a.Controls {
		if err := s.Control(c.Name, c.Args...); err != nil {
			t.Fatalf("control %s %s: %v", a.Name, c.Name, err)
		}
	}
	return s
}

func runTrace(t *testing.T, a *apps.App, s *profiler.Session, n int) {
	t.Helper()
	tr := a.Trace(s.Prog.Types, 42, n)
	if len(tr) != n {
		t.Fatalf("%s trace length %d, want %d", a.Name, len(tr), n)
	}
	for _, p := range tr {
		if err := s.Inject(p); err != nil {
			t.Fatalf("%s inject: %v", a.Name, err)
		}
	}
}

func TestAppsCompileAndForward(t *testing.T) {
	for _, a := range apps.All() {
		a := a
		t.Run(a.Name, func(t *testing.T) {
			s := buildApp(t, a)
			runTrace(t, a, s, 400)
			fwd := float64(s.Stats.Forwarded) / 400
			t.Logf("%s: forwarded %d/400 (%.0f%%), dropped %d",
				a.Name, s.Stats.Forwarded, fwd*100, s.Stats.Dropped)
			if fwd < a.MinForwardFraction {
				t.Errorf("forward fraction %.2f below expected %.2f",
					fwd, a.MinForwardFraction)
			}
			if s.Stats.Forwarded+s.Stats.Dropped != 400 {
				t.Errorf("packets leaked: fwd %d + drop %d != 400",
					s.Stats.Forwarded, s.Stats.Dropped)
			}
		})
	}
}

func TestL3SwitchBehaviour(t *testing.T) {
	a := apps.L3Switch()
	s := buildApp(t, a)
	runTrace(t, a, s, 400)
	read := func(name string) uint32 {
		v, err := s.ReadGlobalWord("l3switch."+name, 0)
		if err != nil {
			t.Fatal(err)
		}
		return v
	}
	routed, bridged, arp := read("routed"), read("bridged")+read("flooded"), read("arp_seen")
	t.Logf("routed=%d bridged=%d arp=%d no_route=%d bad_ip=%d",
		routed, bridged, arp, read("no_route"), read("bad_ip"))
	if routed < 300 {
		t.Errorf("routed = %d, want most of 400", routed)
	}
	if bridged < 30 {
		t.Errorf("bridged = %d, want ~57", bridged)
	}
	if arp != 2 {
		t.Errorf("arp = %d, want 2 (1 in 200)", arp)
	}
	if read("no_route") != 0 {
		t.Errorf("no_route = %d; traces must always hit installed prefixes", read("no_route"))
	}
	// Routed packets must carry a rewritten destination MAC and a
	// decremented TTL.
	found := false
	tp := s.Prog.Types
	for _, o := range s.Out {
		b := o.P.Bytes()
		dhi, _ := o.P.ReadField(0, tp.Protocols["ether"].Field("dst_hi"))
		if dhi == 0x0bb0 {
			found = true
			ttl, _ := o.P.ReadField(14, tp.Protocols["ipv4"].Field("ttl"))
			if ttl < 16 || ttl >= 64 {
				t.Errorf("routed ttl = %d, want decremented original", ttl)
			}
		}
		_ = b
	}
	if !found {
		t.Error("no routed packet with neighbor MAC observed")
	}
}

func TestL3SwitchLongestPrefixMatch(t *testing.T) {
	a := apps.L3Switch()
	s := buildApp(t, a)
	tp := s.Prog.Types
	// 10.1.x.x must match 10.1/16 (nh 2), not 10/8 (nh 1).
	cases := []struct {
		dst    uint32
		wantNH uint32
	}{
		{0x0a010203, 2},
		{0x0a800001, 1},
		{0xc0a80105, 4},
		{0xc0a87777, 3},
		{0xac10aaaa, 5},
	}
	for _, c := range cases {
		p, err := trace.Build([]trace.Layer{
			{Proto: tp.Protocols["ether"], Fields: map[string]uint32{
				"dst_hi": 0x0a00, "dst_lo": 0x5e000000, "type": 0x0800}},
			{Proto: tp.Protocols["ipv4"], Fields: map[string]uint32{
				"ver": 4, "hlen": 5, "ttl": 30, "dst": c.dst}, Size: 20},
		}, 64, tp.Metadata.Bytes)
		if err != nil {
			t.Fatal(err)
		}
		p.Port = 0
		if err := s.Inject(p); err != nil {
			t.Fatal(err)
		}
		out := s.Out[len(s.Out)-1]
		nh := out.P.MetaField(tp.Metadata.Field("next_hop"))
		if nh != c.wantNH {
			t.Errorf("dst %08x: next_hop = %d, want %d", c.dst, nh, c.wantNH)
		}
	}
}

func TestMPLSBehaviour(t *testing.T) {
	a := apps.MPLS()
	s := buildApp(t, a)
	runTrace(t, a, s, 400)
	read := func(name string) uint32 {
		v, err := s.ReadGlobalWord("mplsapp."+name, 0)
		if err != nil {
			t.Fatal(err)
		}
		return v
	}
	t.Logf("swapped=%d popped=%d pushed=%d imposed=%d no_ilm=%d no_fec=%d",
		read("swapped"), read("popped"), read("pushed"), read("imposed"),
		read("no_ilm"), read("no_fec"))
	if read("swapped") < 150 {
		t.Errorf("swapped = %d, want majority", read("swapped"))
	}
	if read("popped") < 40 {
		t.Errorf("popped = %d", read("popped"))
	}
	if read("pushed") < 10 {
		t.Errorf("pushed = %d", read("pushed"))
	}
	if read("imposed") < 30 {
		t.Errorf("imposed = %d", read("imposed"))
	}
	if read("no_fec") != 0 || read("no_ilm") != 0 {
		t.Errorf("misses: no_fec=%d no_ilm=%d", read("no_fec"), read("no_ilm"))
	}
	// Pushed/imposed packets grow; swapped keep size. Check some frame
	// carries an extra 4-byte label (68-byte frame from 64).
	sawGrown := false
	for _, o := range s.Out {
		if len(o.P.Bytes())-o.Head > 64 {
			sawGrown = true
		}
	}
	if !sawGrown {
		t.Error("no grown frame observed (push/imposition should add labels)")
	}
}

func TestFirewallBehaviour(t *testing.T) {
	a := apps.Firewall()
	s := buildApp(t, a)
	runTrace(t, a, s, 400)
	read := func(name string) uint32 {
		v, err := s.ReadGlobalWord("firewall."+name, 0)
		if err != nil {
			t.Fatal(err)
		}
		return v
	}
	allowed, denied, unmatched := read("allowed"), read("denied"), read("unmatched")
	t.Logf("allowed=%d denied=%d unmatched=%d", allowed, denied, unmatched)
	if allowed < 220 {
		t.Errorf("allowed = %d, want ~70%%", allowed)
	}
	if denied < 50 {
		t.Errorf("denied = %d, want ~20%%", denied)
	}
	if unmatched < 20 {
		t.Errorf("unmatched = %d, want ~10%%", unmatched)
	}
	if allowed+denied+unmatched != 400 {
		t.Errorf("classification leak: %d+%d+%d != 400", allowed, denied, unmatched)
	}
	if uint64(allowed) != s.Stats.Forwarded {
		t.Errorf("forwarded %d != allowed %d", s.Stats.Forwarded, allowed)
	}
}
