package apps

import (
	"shangrila/internal/baker/types"
	"shangrila/internal/packet"
	"shangrila/internal/profiler"
	"shangrila/internal/trace"
	"shangrila/internal/workload"
)

// MPLS label operations stored in the incoming-label map (ILM).
const (
	mplsOpSwap = 1
	mplsOpPop  = 2
	mplsOpPush = 3
)

// mplsSrc is the Baker MPLS forwarder of §6.1: packets are routed by
// labels rather than destination IPs (RFC 3031). The LSR data path swaps,
// pops and pushes labels; at the edge (LER), unlabeled IP packets are
// classified into a FEC and get an initial label imposed. Label stacks of
// arbitrary depth pop through a loopback channel — the paper's Figure 9
// case whose offsets SOAR cannot resolve statically.
const mplsSrc = protoPrelude + `
module mplsapp {
    // Incoming label map: op + outgoing label + next hop, indexed by the
    // low bits of the label (labels are allocated to match).
    struct ILM { op:uint; out:uint; nh:uint; }
    ILM ilm[1024];

    // FEC table for label imposition at the edge: prefix match by exact
    // /16 on the destination (a simplified FEC classifier).
    struct FEC { net:uint; label:uint; nh:uint; }
    FEC fec[64];

    struct Neigh { machi:uint; maclo:uint; port:uint; }
    Neigh neighbors[256];

    uint swapped;
    uint popped;
    uint pushed;
    uint imposed;
    uint no_ilm;
    uint no_fec;

    channel mpls_cc  : mpls;
    channel ip_cc    : ipv4;
    channel ipexit_cc : ipv4;
    channel encap_cc : ether;
    channel out_cc   : ether;

    ppf eth_clsfr(ether ph) {
        uint ty = ph->type;
        if (ty == ETH_MPLS) {
            mpls mh = packet_decap(ph);
            channel_put(mpls_cc, mh);
        } else {
            if (ty == ETH_IP) {
                ipv4 iph = packet_decap(ph);
                channel_put(ip_cc, iph);
            } else {
                packet_drop(ph);
            }
        }
    }

    // mpls_fwdr: one label operation per visit; a pop with more labels
    // below re-enters through the mpls_cc loopback.
    ppf mpls_fwdr(mpls ph) {
        uint label = ph->label;
        uint ttl = ph->mttl;
        if (ttl < 2) {
            no_ilm += 1;
            packet_drop(ph);
        } else {
            uint idx = label & 1023;
            uint op = ilm[idx].op;
            if (op == 1) {
                // Swap: rewrite label in place, decrement TTL, ship.
                ph->label = ilm[idx].out;
                ph->mttl = ttl - 1;
                ph->meta.next_hop = ilm[idx].nh;
                swapped += 1;
                ether eph = packet_encap(ph);
                channel_put(encap_cc, eph);
            } else {
                if (op == 2) {
                    popped += 1;
                    if (ph->s == 1) {
                        // Bottom of stack: the payload is IPv4.
                        ipv4 iph = packet_decap(ph);
                        channel_put(ipexit_cc, iph);
                    } else {
                        mpls inner = packet_decap(ph);
                        channel_put(mpls_cc, inner);
                    }
                } else {
                    if (op == 3) {
                        // Push: impose an extra label above this one.
                        ph->mttl = ttl - 1;
                        mpls outer = packet_encap(ph);
                        outer->label = ilm[idx].out;
                        outer->exp = 0;
                        outer->s = 0;
                        outer->mttl = ttl - 1;
                        outer->meta.next_hop = ilm[idx].nh;
                        pushed += 1;
                        ether eph = packet_encap(outer);
                        channel_put(encap_cc, eph);
                    } else {
                        no_ilm += 1;
                        packet_drop(ph);
                    }
                }
            }
        }
    }

    // ler_impose: edge behaviour for unlabeled IP traffic — classify by
    // FEC and push the initial label.
    ppf ler_impose(ipv4 ph) {
        uint dst = ph->dst;
        uint net = dst >> 16;
        uint found = 0;
        uint lab = 0;
        uint nh = 0;
        for (uint i = 0; i < 64; i++) {
            if (fec[i].net == net) {
                lab = fec[i].label;
                nh = fec[i].nh;
                found = 1;
                break;
            }
        }
        if (found == 0) {
            no_fec += 1;
            packet_drop(ph);
        } else {
            mpls mh = packet_encap(ph);
            mh->label = lab;
            mh->exp = 0;
            mh->s = 1;
            mh->mttl = 64;
            mh->meta.next_hop = nh;
            imposed += 1;
            ether eph = packet_encap(mh);
            channel_put(encap_cc, eph);
        }
    }

    // ip_exit: label popped to bottom; hand the bare IP packet onward.
    ppf ip_exit(ipv4 ph) {
        uint ttl = ph->ttl;
        if (ttl < 2) {
            no_ilm += 1;
            packet_drop(ph);
        } else {
            ph->ttl = ttl - 1;
            uint sum = ph->cksum + 0x0100;
            sum = (sum & 0xffff) + (sum >> 16);
            ph->cksum = sum;
            ph->meta.next_hop = 9;
            ether eph = packet_encap(ph);
            channel_put(encap_cc, eph);
        }
    }

    ppf eth_encap(ether ph) {
        uint nh = ph->meta.next_hop;
        ph->dst_hi = neighbors[nh].machi;
        ph->dst_lo = neighbors[nh].maclo;
        ph->src_hi = 0x0a00;
        ph->src_lo = 0x5e000000;
        ph->type = ETH_MPLS;
        ph->meta.tx_port = neighbors[nh].port;
        channel_put(out_cc, ph);
    }

    control func add_ilm(uint idx, uint op, uint out, uint nh) {
        ilm[idx].op = op;
        ilm[idx].out = out;
        ilm[idx].nh = nh;
    }

    control func add_fec(uint idx, uint net, uint label, uint nh) {
        fec[idx].net = net;
        fec[idx].label = label;
        fec[idx].nh = nh;
    }

    control func add_neighbor(uint nh, uint machi, uint maclo, uint port) {
        neighbors[nh].machi = machi;
        neighbors[nh].maclo = maclo;
        neighbors[nh].port  = port;
    }

    wiring {
        rx -> eth_clsfr;
        mpls_cc -> mpls_fwdr;
        ip_cc -> ler_impose;
        ipexit_cc -> ip_exit;
        encap_cc -> eth_encap;
        out_cc -> tx;
    }
}
`

// MPLS label plan: labels 16..47 swap, 48..63 pop, 64..71 push.
type mplsLabels struct {
	swap []uint32
	pop  []uint32
	push []uint32
}

var mplsPlan = mplsLabels{
	swap: []uint32{16, 17, 18, 19, 20, 21, 22, 23},
	pop:  []uint32{48, 49, 50, 51},
	push: []uint32{64, 65},
}

var mplsFECNets = []uint32{0x0a01, 0x0a02, 0xc0a8, 0xac10}

// MPLS builds the MPLS benchmark. Traffic mix: ~55% labeled transit
// (swap), ~20% pop (half of them multi-label stacks that loop back),
// ~8% push, ~17% unlabeled IP hitting the FEC classifier.
func MPLS() *App {
	var controls []profiler.Control
	for _, l := range mplsPlan.swap {
		controls = append(controls, profiler.Control{Name: "mplsapp.add_ilm",
			Args: []uint32{l & 1023, mplsOpSwap, l + 100, 1 + l%4}})
	}
	for _, l := range mplsPlan.pop {
		controls = append(controls, profiler.Control{Name: "mplsapp.add_ilm",
			Args: []uint32{l & 1023, mplsOpPop, 0, 0}})
	}
	for _, l := range mplsPlan.push {
		controls = append(controls, profiler.Control{Name: "mplsapp.add_ilm",
			Args: []uint32{l & 1023, mplsOpPush, l + 200, 5 + l%2}})
	}
	for i, net := range mplsFECNets {
		controls = append(controls, profiler.Control{Name: "mplsapp.add_fec",
			Args: []uint32{uint32(i), net, 300 + uint32(i), 7}})
	}
	for nh := uint32(1); nh <= 9; nh++ {
		controls = append(controls, profiler.Control{Name: "mplsapp.add_neighbor",
			Args: []uint32{nh, 0x0cc0, 0x22000000 + nh, nh % 3}})
	}
	return &App{
		Name:               "mpls",
		Source:             mplsSrc,
		Controls:           controls,
		Traffic:            mplsTraffic(),
		MinForwardFraction: 0.9,
		Churn:              mplsChurn(),
	}
}

func buildMPLS(tp *types.Program, r *workload.Source, labels []uint32, innerTTL uint32) *packet.Packet {
	layers := []trace.Layer{
		{Proto: tp.Protocols["ether"], Fields: map[string]uint32{
			"dst_hi": 0x0a00, "dst_lo": 0x5e000000,
			"src_hi": 0x0002, "src_lo": r.Uint32(), "type": 0x8847}},
	}
	for i, l := range labels {
		s := uint32(0)
		if i == len(labels)-1 {
			s = 1
		}
		layers = append(layers, trace.Layer{Proto: tp.Protocols["mpls"],
			Fields: map[string]uint32{"label": l, "exp": 0, "s": s, "mttl": 33}})
	}
	layers = append(layers, trace.Layer{Proto: tp.Protocols["ipv4"],
		Fields: map[string]uint32{"ver": 4, "hlen": 5, "ttl": innerTTL,
			"dst": r.AddrInPrefix(trace.Prefix{Addr: 0x0a010000, Len: 16})},
		Size: 20})
	p, err := trace.Build(layers, 64, tp.Metadata.Bytes)
	if err != nil {
		panic(err)
	}
	p.Port = uint32(r.Intn(3))
	return p
}

// mplsTraffic declares the MPLS mix as weighted cases; the single
// per-packet selection roll and cumulative boundaries reproduce the
// historical switch exactly.
func mplsTraffic() TraceSpec {
	return TraceSpec{Cases: []TraceCase{
		{Name: "swap", Weight: 55, // transit swap
			Build: func(tp *types.Program, r *workload.Source, i int) *packet.Packet {
				l := mplsPlan.swap[r.Intn(len(mplsPlan.swap))]
				return buildMPLS(tp, r, []uint32{l}, 19)
			}},
		{Name: "pop", Weight: 10, // single pop to IP exit
			Build: func(tp *types.Program, r *workload.Source, i int) *packet.Packet {
				l := mplsPlan.pop[r.Intn(len(mplsPlan.pop))]
				return buildMPLS(tp, r, []uint32{l}, 19)
			}},
		{Name: "stacked-pop", Weight: 10, // outer pop(s), then a swap below
			Build: func(tp *types.Program, r *workload.Source, i int) *packet.Packet {
				depth := 1 + r.Intn(2)
				var labels []uint32
				for d := 0; d < depth; d++ {
					labels = append(labels, mplsPlan.pop[r.Intn(len(mplsPlan.pop))])
				}
				labels = append(labels, mplsPlan.swap[r.Intn(len(mplsPlan.swap))])
				return buildMPLS(tp, r, labels, 19)
			}},
		{Name: "push", Weight: 8,
			Build: func(tp *types.Program, r *workload.Source, i int) *packet.Packet {
				l := mplsPlan.push[r.Intn(len(mplsPlan.push))]
				return buildMPLS(tp, r, []uint32{l}, 19)
			}},
		{Name: "fec", Weight: 17, // unlabeled IP -> FEC imposition
			Build: func(tp *types.Program, r *workload.Source, i int) *packet.Packet {
				net := mplsFECNets[r.Intn(len(mplsFECNets))]
				dst := net<<16 | (r.Uint32() & 0xffff)
				return buildIP(tp, r, 0x0a00, 0x5e000000, dst, 6, 0, 0, false)
			}},
	}}
}
